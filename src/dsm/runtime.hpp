// Per-node DSM runtime: lazy-invalidate release consistency.
//
// One DsmRuntime exists per cluster node. The application thread calls the
// acquire/release/barrier/access API; the protocol itself is a set of
// handlers installed on the node's network board — Application Interrupt
// Handlers executing on the CNI's network processor, or host-side interrupt
// handlers on the standard NIC. The protocol (after Keleher et al., which
// the paper's evaluation runs):
//
//   * writes are detected by (simulated) page protection: a write fault
//     twins the page and adds it to the current interval's write notices;
//   * a release closes the interval; an acquire carries every interval the
//     acquirer has not seen, and the acquirer *invalidates* the noticed
//     pages (lazy invalidate);
//   * a fault on an invalidated page fetches a full page from a maximal
//     concurrent writer plus diffs from the other maximal writers
//     (concurrent write sharing), merged locally in happens-before order;
//   * locks use a home-based distributed manager whose grants travel
//     releaser -> acquirer directly; barriers use a centralized manager that
//     redistributes intervals (paper: lazy invalidate RC, barrier+lock apps).
//
// Page replies carry the Message Cache header bit, so on the CNI they are
// receive-cached on their way in and transmit-cached on their way out — the
// page-migration fast path the paper's Cholesky discussion highlights.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "atm/packet.hpp"
#include "cluster/cluster.hpp"
#include "dsm/interval.hpp"
#include "dsm/msg.hpp"
#include "dsm/page_state.hpp"
#include "nic/board.hpp"
#include "sim/channel.hpp"

namespace cni::dsm {

class DsmSystem;

class DsmRuntime {
 public:
  DsmRuntime(DsmSystem& system, std::uint32_t self);

  /// Binds the application thread that will call the app-side API.
  void bind_thread(sim::SimThread& thread) { thread_ = &thread; }

  // ---- Application API (call only from the bound thread) ----

  void acquire(std::uint32_t lock);
  void release(std::uint32_t lock);
  void barrier();

  /// All-reduce of one u64 over the system's collective tree: every node
  /// contributes `value` and receives the fold. Not a memory-consistency
  /// point (no interval redistribution) — a pure data collective.
  std::uint64_t reduce(ReduceOp op, std::uint64_t value);
  /// Broadcast from the tree root (node 0): every node receives the root's
  /// `value`; other nodes' contributions are ignored.
  std::uint64_t broadcast(std::uint64_t value);

  /// Fast-path shared access: validates protection (faulting and fetching as
  /// needed), charges the cache-model timing, and returns a pointer to the
  /// bytes. [va, va+len) must lie within one page.
  std::byte* access(mem::VAddr va, std::uint32_t len, bool write);

  template <typename T>
  [[nodiscard]] T read(mem::VAddr va) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    std::memcpy(&v, access(va, sizeof(T), false), sizeof(T));
    return v;
  }

  template <typename T>
  void write(mem::VAddr va, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(access(va, sizeof(T), true), &value, sizeof(T));
  }

  // ---- Introspection (tests, stats) ----
  [[nodiscard]] std::uint32_t self() const { return self_; }
  [[nodiscard]] const VectorClock& clock() const { return vc_; }
  [[nodiscard]] PageMode page_mode(PageId p) const;
  [[nodiscard]] std::size_t pending_notices(PageId p) const;
  [[nodiscard]] const IntervalStore& interval_store() const { return store_; }
  [[nodiscard]] cluster::Node& node() { return node_; }
  /// Whether the centralized barrier-manager state exists on this node: it
  /// is allocated lazily, at the manager's first kDsmBarArrive, so every
  /// other node (and every node in kNic mode) answers false.
  [[nodiscard]] bool barrier_manager_allocated() const { return barrier_mgr_ != nullptr; }

 private:
  using Ctx = nic::NicBoard::RxContext;
  friend class DsmSystem;

  /// Installs the protocol handlers on this node's board.
  void install_handlers();

  // -- protocol handlers (run on the NIC for CNI, on the host for standard) --
  void on_lock_req(Ctx& ctx, const atm::Frame& f);
  void on_lock_fwd(Ctx& ctx, const atm::Frame& f);
  void on_lock_grant(Ctx& ctx, const atm::Frame& f);
  void on_lock_rel(Ctx& ctx, const atm::Frame& f);
  void on_bar_arrive(Ctx& ctx, const atm::Frame& f);
  void on_bar_release(Ctx& ctx, const atm::Frame& f);
  void on_col_up(Ctx& ctx, const atm::Frame& f);
  void on_col_down(Ctx& ctx, const atm::Frame& f);
  void on_red_up(Ctx& ctx, const atm::Frame& f);
  void on_red_down(Ctx& ctx, const atm::Frame& f);
  void on_page_req(Ctx& ctx, const atm::Frame& f);
  void on_page_reply(Ctx& ctx, const atm::Frame& f);
  void on_diff_req(Ctx& ctx, const atm::Frame& f);
  void on_diff_reply(Ctx& ctx, const atm::Frame& f);

  // -- machinery --
  PageEntry& entry(PageId p);
  void fault(PageId p, bool write);
  void fetch_page_data(PageEntry& e, PageId p);
  void apply_fetch_results(PageEntry& e);
  void write_upgrade(PageEntry& e, PageId p);
  void close_interval();

  /// Handles one incoming interval: stores it, merges the clock component,
  /// records pending notices and invalidates affected pages (preserving any
  /// local modifications as retained diffs). Returns the notice count.
  std::size_t process_incoming_interval(const Interval& iv);

  /// Snapshots the page's open modifications (twin vs data) as a retained
  /// per-interval diff tagged `tag`, clearing the twin.
  void snapshot_own_diff(PageEntry& e, const VectorClock& tag);

  /// Removes from `older` every byte range `newer` also covers (shadow
  /// subtraction: each byte lives in exactly one retained diff).
  static void subtract_shadowed(Diff& older, const Diff& newer);

  /// Builds a grant-style payload (kMsgHeadroom-fronted): releaser clock +
  /// intervals unseen by rvc.
  util::Buf build_interval_payload(const VectorClock& rvc,
                                   std::size_t* interval_count) const;

  /// Canonical combined order for tree collectives: sorts by (writer, index)
  /// and drops duplicates, so the merged set is independent of the arrival
  /// interleaving (byte-identity across shard counts) and per-writer
  /// ascending (the dense-insert order IntervalStore requires).
  static void sort_unique_intervals(std::vector<Interval>& ivs);

  /// Schedules this node's barrier release at `at`: processes `ivs` in
  /// order, merges `global` into the clock, records the new barrier floor
  /// and wakes the app thread. Shared by the centralized release handler
  /// and both ends of the tree down-sweep.
  void schedule_barrier_release(sim::SimTime at, std::vector<Interval> ivs,
                                VectorClock global);

  /// Down-sweep fan-out of the parked barrier fold: per child, the episode
  /// intervals that child's subtree floor does not cover, plus the global
  /// clock.
  void col_down_fanout(Ctx& ctx, const VectorClock& global);

  /// Delivers a finished reduce: forwards the result to the tree children,
  /// schedules this node's own wake-up, and resets the combine slot.
  void red_down_deliver(Ctx& ctx, std::uint64_t value);

  /// Patches the message header into `payload`'s kMsgHeadroom front bytes
  /// and wraps it as a frame — the pooled buffer IS the frame payload.
  atm::Frame make_frame(std::uint32_t dst, nic::MsgType type, std::uint16_t flags,
                        std::uint32_t aux, mem::VAddr buffer_va, util::Buf payload);

  /// Sends a protocol request from the application thread (charges the
  /// request-build cost plus the board's host-side send cost). A nonzero
  /// `trace` token rides as the outgoing frame's causal parent, rooting the
  /// request's span tree under the fault or barrier that triggered it.
  void send_request(std::uint32_t dst, nic::MsgType type, std::uint32_t aux,
                    util::Buf payload, std::uint64_t trace = 0);

  /// True when the node's observability context exists and tracing is on —
  /// the gate for minting causal root tokens on this runtime's requests.
  [[nodiscard]] bool tracing() const;

  [[nodiscard]] mem::VAddr va_of_page(PageId p) const;
  [[nodiscard]] std::uint64_t page_words() const;

  // -- lock home bookkeeping (for locks homed at this node) --
  struct LockHome {
    bool held = false;
    bool has_releaser = false;
    std::uint32_t holder = 0;
    std::uint32_t last_releaser = 0;
    std::deque<std::pair<std::uint32_t, VectorClock>> waiters;
  };

  // -- centralized barrier manager (kHost mode; lazily allocated on the
  //    manager node at its first arrive, so the other N-1 runtimes never
  //    carry the state) --
  struct BarrierManager {
    std::uint32_t arrived = 0;
    std::uint32_t epoch = 0;
    std::vector<VectorClock> node_vcs;
    IntervalStore store;  ///< separate from the node's own store (see .cpp)
  };

  // -- NIC-tree collective state (DESIGN.md §16): one barrier episode and
  //    one reduce episode can be in flight; the tree's release discipline
  //    (children only start epoch E+1 after receiving E's down-sweep) makes
  //    a single combine slot per kind sufficient --
  struct ColCombine {
    std::uint32_t arrived = 0;  ///< contributions in: self + each child
    std::uint32_t epoch = 0;    ///< completed barrier episodes (aux check)
    VectorClock min;            ///< element-wise min of subtree clocks
    std::vector<std::pair<std::uint32_t, VectorClock>> child_min;  ///< per-child floors
    std::vector<Interval> ivs;  ///< combined epoch intervals (sorted, deduped)
  };
  struct RedCombine {
    std::uint32_t arrived = 0;
    std::uint32_t epoch = 0;  ///< completed reduce episodes (aux check)
    bool have = false;
    std::uint64_t value = 0;
  };

  // -- one outstanding data fetch (the app thread blocks on it) --
  struct Fetch {
    bool active = false;
    std::uint32_t req_id = 0;
    PageId page = 0;
    bool want_base = false;
    bool base_done = false;
    std::uint32_t base_from = 0;  ///< node serving the base page
    VectorClock base_vc;  ///< the base copy's shipped per-writer content clock
    VectorClock floor;    ///< per-writer content floor (filters shipped diffs)
    std::uint32_t diffs_wanted = 0;
    std::uint32_t diffs_got = 0;
    util::Buf base_keep;              ///< pins the reply payload `base` views
    std::span<const std::byte> base;  ///< shipped page image (zero-copy)
    std::vector<Diff> diffs;
    bool complete = false;
  };

  DsmSystem& sys_;
  cluster::Node& node_;
  std::uint32_t self_;
  std::uint32_t nprocs_;
  sim::SimThread* thread_ = nullptr;

  VectorClock vc_;
  IntervalStore store_;
  VectorClock last_barrier_vc_;  ///< global clock of the last barrier release
  std::vector<PageEntry> pages_;
  std::set<PageId> dirty_;  ///< write notices of the open interval
  std::uint32_t next_req_id_ = 1;

  std::map<std::uint32_t, LockHome> lock_homes_;
  std::unique_ptr<BarrierManager> barrier_mgr_;
  ColCombine col_;
  RedCombine red_;

  Fetch fetch_;
  bool lock_granted_ = false;
  bool barrier_released_ = false;
  bool red_released_ = false;
  std::uint64_t red_result_ = 0;
  std::uint32_t red_calls_ = 0;  ///< app-side reduce episodes started
  sim::WaitQueue wq_;

  // Observability handles (resolved once in the constructor; may be null).
  obs::NodeObs* obs_ = nullptr;
  obs::Hist* fault_hist_ = nullptr;  ///< dsm.fault_latency_ps: trap -> page usable
};

}  // namespace cni::dsm
