#include "dsm/system.hpp"

#include "util/check.hpp"
#include "util/units.hpp"

namespace cni::dsm {

DsmSystem::DsmSystem(cluster::Cluster& cluster, DsmParams params)
    : cluster_(cluster), params_(params), geo_(cluster.params().page_size) {
  runtimes_.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    // cni-lint: allow(hot-path-alloc): one DsmRuntime per node at system
    // construction — never on the per-message path.
    auto rt = std::make_unique<DsmRuntime>(*this, static_cast<std::uint32_t>(i));
    runtimes_.push_back(std::move(rt));
  }
  for (auto& rt : runtimes_) rt->install_handlers();
}

mem::VAddr DsmSystem::alloc_with_homes(std::uint64_t bytes, const std::string& name,
                                       const std::vector<std::uint32_t>& page_homes) {
  (void)name;
  CNI_CHECK(bytes > 0);
  const mem::VAddr base = mem::kSharedBase + next_offset_;
  next_offset_ += util::align_up(bytes, geo_.size());
  homes_.insert(homes_.end(), page_homes.begin(), page_homes.end());
  return base;
}

mem::VAddr DsmSystem::alloc(std::uint64_t bytes, const std::string& name) {
  const std::uint64_t npages = util::ceil_div(bytes, geo_.size());
  std::vector<std::uint32_t> homes(npages);
  for (std::uint64_t i = 0; i < npages; ++i) {
    homes[i] = static_cast<std::uint32_t>((homes_.size() + i) % nodes());
  }
  return alloc_with_homes(bytes, name, homes);
}

mem::VAddr DsmSystem::alloc_blocked(std::uint64_t bytes, const std::string& name) {
  const std::uint64_t npages = util::ceil_div(bytes, geo_.size());
  std::vector<std::uint32_t> homes(npages);
  for (std::uint64_t i = 0; i < npages; ++i) {
    homes[i] = static_cast<std::uint32_t>(i * nodes() / npages);
  }
  return alloc_with_homes(bytes, name, homes);
}

mem::VAddr DsmSystem::alloc_at(std::uint64_t bytes, const std::string& name,
                               std::uint32_t home) {
  CNI_CHECK(home < nodes());
  const std::uint64_t npages = util::ceil_div(bytes, geo_.size());
  return alloc_with_homes(bytes, name, std::vector<std::uint32_t>(npages, home));
}

}  // namespace cni::dsm
