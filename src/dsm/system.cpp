#include "dsm/system.hpp"

#include "util/check.hpp"
#include "util/units.hpp"

namespace cni::dsm {

namespace {

atm::CollectiveTree build_collective_tree(cluster::Cluster& cluster,
                                          const DsmParams& params) {
  const auto nodes = static_cast<std::uint32_t>(cluster.size());
  if (params.collective == cluster::CollectiveMode::kHost) {
    // Host mode: barriers keep the seed's centralized manager protocol;
    // reduce/broadcast run the same tree machinery over a star at node 0.
    return atm::make_star_tree(nodes, 0);
  }
  // The combine step runs on the 33 MHz network processor. A tree edge adds
  // the full store-and-forward pipeline — the child's frame tx, the parent's
  // frame rx, the PATHFINDER dispatch and the combine handler's base work —
  // while each extra child slot adds only the serialized downlink occupancy
  // of one more arriving frame (the handler work overlaps the DMA-driven
  // reception of the next child's frame). Evaluated against the topology's
  // zero-load distances this is what differentiates the fabrics: the banyan's
  // flat 500 ns keeps trees narrow, while the Clos cross-block and torus
  // multi-hop distances up-weight depth and buy wider fan-in (DESIGN.md §16).
  const sim::Clock nic(cluster.params().nic.nic_freq_hz);
  const sim::SimDuration per_hop = nic.cycles(cluster.params().nic.per_frame_tx_cycles +
                                              cluster.params().nic.per_frame_rx_cycles +
                                              cluster.params().nic.aih_dispatch_cycles +
                                              params.handler_base_cycles);
  const sim::SimDuration per_child = nic.cycles(cluster.params().nic.per_frame_rx_cycles);
  return atm::make_collective_tree(cluster.fabric().topology(), nodes, per_hop,
                                   per_child, params.collective_fanin);
}

}  // namespace

DsmSystem::DsmSystem(cluster::Cluster& cluster, DsmParams params)
    : cluster_(cluster),
      params_(params),
      coll_tree_(build_collective_tree(cluster, params_)),
      geo_(cluster.params().page_size) {
  runtimes_.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    // cni-lint: allow(hot-path-alloc): one DsmRuntime per node at system
    // construction — never on the per-message path.
    auto rt = std::make_unique<DsmRuntime>(*this, static_cast<std::uint32_t>(i));
    runtimes_.push_back(std::move(rt));
  }
  for (auto& rt : runtimes_) rt->install_handlers();
}

mem::VAddr DsmSystem::alloc_with_homes(std::uint64_t bytes, const std::string& name,
                                       const std::vector<std::uint32_t>& page_homes) {
  (void)name;
  CNI_CHECK(bytes > 0);
  const mem::VAddr base = mem::kSharedBase + next_offset_;
  next_offset_ += util::align_up(bytes, geo_.size());
  homes_.insert(homes_.end(), page_homes.begin(), page_homes.end());
  return base;
}

mem::VAddr DsmSystem::alloc(std::uint64_t bytes, const std::string& name) {
  const std::uint64_t npages = util::ceil_div(bytes, geo_.size());
  std::vector<std::uint32_t> homes(npages);
  for (std::uint64_t i = 0; i < npages; ++i) {
    homes[i] = static_cast<std::uint32_t>((homes_.size() + i) % nodes());
  }
  return alloc_with_homes(bytes, name, homes);
}

mem::VAddr DsmSystem::alloc_blocked(std::uint64_t bytes, const std::string& name) {
  const std::uint64_t npages = util::ceil_div(bytes, geo_.size());
  std::vector<std::uint32_t> homes(npages);
  for (std::uint64_t i = 0; i < npages; ++i) {
    homes[i] = static_cast<std::uint32_t>(i * nodes() / npages);
  }
  return alloc_with_homes(bytes, name, homes);
}

mem::VAddr DsmSystem::alloc_at(std::uint64_t bytes, const std::string& name,
                               std::uint32_t home) {
  CNI_CHECK(home < nodes());
  const std::uint64_t npages = util::ceil_div(bytes, geo_.size());
  return alloc_with_homes(bytes, name, std::vector<std::uint32_t>(npages, home));
}

}  // namespace cni::dsm
