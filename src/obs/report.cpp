#include "obs/report.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/critpath.hpp"
#include "util/log.hpp"

namespace cni::obs {
namespace {

// All numeric output goes through snprintf with explicit formats: the report
// must be byte-stable across runs and toolchains, so no iostream locale or
// default float formatting is allowed anywhere in this file.
void append_fmt(std::string& out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out.append(buf, buf + (n < 0 ? 0 : (n >= static_cast<int>(sizeof(buf))
                                          ? static_cast<int>(sizeof(buf)) - 1
                                          : n)));
}

void append_u64(std::string& out, std::uint64_t v) {
  append_fmt(out, "%" PRIu64, v);
}

/// Doubles print as shortest round-trip-exact decimal (%.17g is stable for
/// a given value; the values themselves are deterministic).
void append_double(std::string& out, double v) {
  append_fmt(out, "%.17g", v);
}

/// Simulated picoseconds -> trace_event "ts" microseconds, printed as a
/// fixed-point decimal so the text never depends on float formatting.
void append_ts_us(std::string& out, std::uint64_t ps) {
  append_fmt(out, "%" PRIu64 ".%06" PRIu64, std::uint64_t{ps / 1000000U},
             std::uint64_t{ps % 1000000U});
}

void append_kv_str(std::string& out, const char* key, const std::string& value,
                   bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":\"";
  out += json_escape(value);
  out += '"';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          append_fmt(out, "\\u%04x", c);
        } else {
          out += raw;
        }
    }
  }
  return out;
}

const char* build_version() {
#if defined(CNI_GIT_DESCRIBE)
  return CNI_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string chrome_trace_json(const std::vector<ReportPoint>& points) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) out += ',';
    first = false;
  };
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    const ReportPoint& pt = points[pi];
    // Metadata events name the pid (sweep point) and tids (nodes) so the
    // viewer shows "procs=8 system=cni" instead of bare numbers.
    comma();
    append_fmt(out, "{\"ph\":\"M\",\"pid\":%zu,\"name\":\"process_name\",\"args\":{\"name\":\"",
               pi);
    out += json_escape(pt.label);
    out += "\"}}";
    for (const NodeSnapshot& node : pt.snapshot.nodes) {
      comma();
      append_fmt(out,
                 "{\"ph\":\"M\",\"pid\":%zu,\"tid\":%u,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"node %u\"}}",
                 pi, node.node, node.node);
      for (const TraceRecord& r : node.trace) {
        comma();
        out += "{\"name\":\"";
        out += event_name(r.event);
        out += "\",\"cat\":\"";
        out += component_name(r.component);
        out += "\",\"ph\":\"";
        switch (r.kind) {
          case Kind::kSpan: out += 'X'; break;
          case Kind::kCounter: out += 'C'; break;
          case Kind::kInstant: out += 'i'; break;
          case Kind::kCausal: out += 'X'; break;  // complete span; tokens in args
        }
        out += "\",\"ts\":";
        append_ts_us(out, r.time);
        if (r.kind == Kind::kSpan || r.kind == Kind::kCausal) {
          out += ",\"dur\":";
          append_ts_us(out, r.dur);
        }
        append_fmt(out, ",\"pid\":%zu,\"tid\":%u", pi, node.node);
        if (r.kind == Kind::kInstant) out += ",\"s\":\"t\"";
        if (r.kind == Kind::kCounter) {
          out += ",\"args\":{\"value\":";
          append_u64(out, r.arg0);
          out += "}}";
        } else {
          out += ",\"args\":{\"arg0\":";
          append_u64(out, r.arg0);
          out += ",\"arg1\":";
          append_u64(out, r.arg1);
          out += "}}";
        }
      }
    }
  }
  out += "],\"otherData\":{\"schema\":\"cni-chrome-trace\",\"build\":\"";
  out += json_escape(build_version());
  out += "\"}}\n";
  return out;
}

namespace {

void append_node_json(std::string& out, const NodeSnapshot& node) {
  append_fmt(out, "{\"node\":%u,\"counters\":{", node.node);
  bool first = true;
  for (const CounterSnapshot& c : node.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(c.name);
    out += "\":";
    append_u64(out, c.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistSnapshot& h : node.hists) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(h.name);
    out += "\":{\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_u64(out, h.sum);
    out += ",\"min\":";
    append_u64(out, h.min);
    out += ",\"max\":";
    append_u64(out, h.max);
    out += ",\"p50\":";
    append_u64(out, h.p50);
    out += ",\"p95\":";
    append_u64(out, h.p95);
    out += ",\"p99\":";
    append_u64(out, h.p99);
    out += '}';
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& g : node.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(g.name);
    out += "\":{\"value\":";
    append_fmt(out, "%" PRId64, g.value);
    out += ",\"max\":";
    append_fmt(out, "%" PRId64, g.max);
    out += '}';
  }
  out += "},\"trace\":{\"recorded\":";
  append_u64(out, node.trace_recorded);
  out += ",\"dropped\":";
  append_u64(out, node.trace_dropped);
  out += "}}";
}

/// Did any node's trace ring drop records for this point? When true the
/// causal trees (and therefore the critpath) may be missing interior spans.
bool point_truncated(const ReportPoint& pt) {
  for (const NodeSnapshot& node : pt.snapshot.nodes) {
    if (node.trace_dropped != 0) return true;
  }
  return false;
}

void append_point_json(std::string& out, const ReportPoint& pt) {
  out += "{\"label\":\"";
  out += json_escape(pt.label);
  out += "\",\"config\":{";
  bool first = true;
  for (const auto& [k, v] : pt.config) append_kv_str(out, k.c_str(), v, &first);
  out += "},\"values\":{";
  first = true;
  for (const auto& [k, v] : pt.values) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":";
    append_double(out, v);
  }
  out += "},\"legacy\":{";
  first = true;
  for (const auto& [k, v] : pt.legacy) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":";
    append_u64(out, v);
  }
  append_fmt(out, "},\"traced\":%s,\"trace_truncated\":%s,\"critpath\":",
             pt.snapshot.traced ? "true" : "false",
             point_truncated(pt) ? "true" : "false");
  out += critpath_report_fragment(extract_critical_path(pt.snapshot));
  out += ",\"nodes\":[";
  first = true;
  for (const NodeSnapshot& node : pt.snapshot.nodes) {
    if (!first) out += ',';
    first = false;
    append_node_json(out, node);
  }
  // Totals: every counter name summed across nodes, in first-appearance
  // order. This is the section validate_report.py diffs against "legacy".
  std::vector<std::pair<std::string, std::uint64_t>> totals;
  for (const NodeSnapshot& node : pt.snapshot.nodes) {
    for (const CounterSnapshot& c : node.counters) {
      bool found = false;
      for (auto& [name, sum] : totals) {
        if (name == c.name) {
          sum += c.value;
          found = true;
          break;
        }
      }
      if (!found) totals.emplace_back(c.name, c.value);
    }
  }
  out += "],\"totals\":{";
  first = true;
  for (const auto& [k, v] : totals) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":";
    append_u64(out, v);
  }
  out += '}';
  const BufPoolSnapshot& bp = pt.snapshot.bufpool;
  if (bp.sampled) {
    // Allocator stats are per-thread process state, not simulation state:
    // under parallel sweeps a worker's pool spans several points, so this
    // section is advisory and excluded from determinism guarantees.
    out += ",\"bufpool\":{\"advisory\":true,\"hits\":";
    append_u64(out, bp.hits);
    out += ",\"misses\":";
    append_u64(out, bp.misses);
    out += ",\"refurbished\":";
    append_u64(out, bp.refurbished);
    out += ",\"remote_frees\":";
    append_u64(out, bp.remote_frees);
    out += ",\"outstanding\":";
    append_u64(out, bp.outstanding);
    out += '}';
  }
  out += '}';
}

}  // namespace

std::string run_report_json(
    const std::string& binary,
    const std::vector<std::pair<std::string, std::string>>& config,
    const std::vector<ReportPoint>& points) {
  std::string out;
  out += "{\"schema\":\"cni-run-report\",\"version\":";
  append_u64(out, kReportVersion);
  out += ",\"build\":\"";
  out += json_escape(build_version());
  out += "\",\"binary\":\"";
  out += json_escape(binary);
  // The simulator is deterministic by construction (no RNG in the model);
  // the seed field exists so the schema survives a future stochastic mode.
  out += "\",\"seed\":0,\"trace_truncated\":";
  bool any_truncated = false;
  for (const ReportPoint& pt : points) any_truncated = any_truncated || point_truncated(pt);
  out += any_truncated ? "true" : "false";
  out += ",\"config\":{";
  bool first = true;
  for (const auto& [k, v] : config) append_kv_str(out, k.c_str(), v, &first);
  out += "},\"points\":[";
  first = true;
  for (const ReportPoint& pt : points) {
    if (!first) out += ',';
    first = false;
    append_point_json(out, pt);
  }
  out += "]}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    CNI_LOG_ERROR("obs: cannot open %s for writing", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = n == contents.size() && std::fclose(f) == 0;
  if (!ok) CNI_LOG_ERROR("obs: short write to %s", path.c_str());
  return ok;
}

Reporter::Reporter(int argc, char** argv, std::string binary)
    : binary_(std::move(binary)) {
  Options opts = default_options();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_path_ = arg + 12;
      opts.trace = true;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_path_ = arg + 14;
    } else if (std::strncmp(arg, "--critpath-out=", 15) == 0) {
      critpath_path_ = arg + 15;
      opts.trace = true;  // critpath extraction needs the causal records
    } else if (std::strncmp(arg, "--trace-capacity=", 17) == 0) {
      opts.trace_capacity =
          static_cast<std::uint32_t>(std::strtoul(arg + 17, nullptr, 10));
    }
  }
  // Install before any sweep thread exists: worker threads read the default
  // when they build SimParams, and a post-spawn write would race.
  set_default_options(opts);
}

bool Reporter::finish() const {
  bool ok = true;
  if (!trace_path_.empty()) {
    ok = write_text_file(trace_path_, chrome_trace_json(points_)) && ok;
  }
  if (!metrics_path_.empty()) {
    ok = write_text_file(metrics_path_, run_report_json(binary_, config_, points_)) && ok;
  }
  if (!critpath_path_.empty()) {
    std::vector<std::pair<std::string, CritPath>> cps;
    cps.reserve(points_.size());
    for (const ReportPoint& pt : points_) {
      cps.emplace_back(pt.label, extract_critical_path(pt.snapshot));
    }
    ok = write_text_file(critpath_path_, critpath_json(cps)) && ok;
  }
  return ok;
}

}  // namespace cni::obs
