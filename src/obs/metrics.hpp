// Metrics registry: named counters, gauges and log-2 latency histograms.
//
// Handles are resolved by name exactly once, at setup (board/runtime
// constructors); the hot path touches a plain uint64 or a histogram bucket —
// no string lookups, no allocation after init (enforced by the hot-path
// rules in scripts/lint_cni.py, which cover src/obs/).
//
// Counters come in two flavours: *bound* counters are read-only views onto
// externally-owned fields (the legacy sim::NodeStats accounts — binding
// instead of duplicating is what makes the migration cross-check exact by
// construction), and *owned* counters live in the registry for components
// with no NodeStats field.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace cni::obs {

/// Fixed-bucket base-2 logarithmic histogram. Bucket i counts values whose
/// bit width is i (bucket 0: value 0; bucket i: 2^(i-1) <= v < 2^i), so one
/// 64-entry array covers the full uint64 range — picosecond latencies from
/// sub-nanosecond to hours land in distinct buckets with ~2x resolution.
class Hist {
 public:
  static constexpr std::uint32_t kBuckets = 65;

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] static std::uint32_t bucket_of(std::uint64_t v) {
    return static_cast<std::uint32_t>(64 - static_cast<std::uint32_t>(__builtin_clzll(v | 1)) -
                                      (v == 0 ? 1 : 0));
  }
  /// Inclusive upper bound of bucket i (the value reported for percentiles).
  [[nodiscard]] static std::uint64_t bucket_bound(std::uint32_t i) {
    return i == 0 ? 0 : (i >= 64 ? ~0ULL : (1ULL << i) - 1);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] std::uint64_t bucket(std::uint32_t i) const { return buckets_[i]; }

  /// Upper bound of the bucket containing the p-th percentile (p in 0..100).
  /// The true max is reported for p >= 100 so `percentile(100) == max()`.
  [[nodiscard]] std::uint64_t percentile(double p) const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// A last-value gauge with a high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(std::int64_t d) { set(value_ + d); }
  [[nodiscard]] std::int64_t value() const { return value_; }
  [[nodiscard]] std::int64_t max() const { return max_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// One node's named metrics. Registration happens at setup; deques keep
/// every handed-out pointer stable for the life of the registry.
class Metrics {
 public:
  /// Registers `name` as a view onto an externally-owned counter field.
  void bind_counter(std::string name, const std::uint64_t* value) {
    CNI_CHECK(value != nullptr);
    counters_.push_back(CounterEntry{std::move(name), value, nullptr});
  }

  /// Returns the owned counter registered under `name`, creating it on first
  /// use. Resolve once at setup; bump through the pointer on the hot path.
  [[nodiscard]] std::uint64_t* counter(const std::string& name) {
    for (CounterEntry& e : counters_) {
      if (e.owned != nullptr && e.name == name) return e.owned;
    }
    owned_counters_.push_back(0);
    counters_.push_back(CounterEntry{name, &owned_counters_.back(), &owned_counters_.back()});
    return &owned_counters_.back();
  }

  [[nodiscard]] Hist* histogram(const std::string& name) {
    for (HistEntry& e : hists_) {
      if (e.name == name) return &e.hist;
    }
    hists_.push_back(HistEntry{name, Hist{}});
    return &hists_.back().hist;
  }

  [[nodiscard]] Gauge* gauge(const std::string& name) {
    for (GaugeEntry& e : gauges_) {
      if (e.name == name) return &e.gauge;
    }
    gauges_.push_back(GaugeEntry{name, Gauge{}});
    return &gauges_.back().gauge;
  }

  /// fn(name, value) over every counter, in registration order.
  template <typename Fn>
  void for_each_counter(Fn&& fn) const {
    for (const CounterEntry& e : counters_) fn(e.name, *e.value);
  }

  /// fn(name, const Hist&) in registration order.
  template <typename Fn>
  void for_each_histogram(Fn&& fn) const {
    for (const HistEntry& e : hists_) fn(e.name, e.hist);
  }

  /// fn(name, const Gauge&) in registration order.
  template <typename Fn>
  void for_each_gauge(Fn&& fn) const {
    for (const GaugeEntry& e : gauges_) fn(e.name, e.gauge);
  }

 private:
  struct CounterEntry {
    std::string name;
    const std::uint64_t* value;  ///< what for_each_counter reads
    std::uint64_t* owned;        ///< non-null iff the registry owns the value
  };
  struct HistEntry {
    std::string name;
    Hist hist;
  };
  struct GaugeEntry {
    std::string name;
    Gauge gauge;
  };

  std::vector<CounterEntry> counters_;
  std::deque<std::uint64_t> owned_counters_;  // stable addresses
  std::deque<HistEntry> hists_;
  std::deque<GaugeEntry> gauges_;
};

}  // namespace cni::obs
