#include "obs/options.hpp"

#include <atomic>
#include <cstdlib>

namespace cni::obs {
namespace {

// Packed {initialized, trace, capacity} so reads are a single atomic load.
// Writers (env init, Reporter construction) run before sweep threads spawn;
// the atomic keeps the cross-thread *reads* well-defined under TSan.
struct PackedOptions {
  bool init = false;
  bool trace = false;
  std::uint32_t capacity = 4096;
};
std::atomic<PackedOptions> g_defaults{PackedOptions{}};

PackedOptions from_env() {
  PackedOptions p;
  p.init = true;
  const char* trace = std::getenv("CNI_TRACE");
  p.trace = trace != nullptr && trace[0] != '\0' && trace[0] != '0';
  if (const char* cap = std::getenv("CNI_TRACE_CAPACITY"); cap != nullptr) {
    const unsigned long v = std::strtoul(cap, nullptr, 10);
    if (v > 0) p.capacity = static_cast<std::uint32_t>(v);
  }
  return p;
}

}  // namespace

Options default_options() {
  PackedOptions p = g_defaults.load(std::memory_order_acquire);
  if (!p.init) {
    p = from_env();
    g_defaults.store(p, std::memory_order_release);
  }
  Options o;
  o.trace = p.trace;
  o.trace_capacity = p.capacity;
  return o;
}

void set_default_options(const Options& opts) {
  PackedOptions p;
  p.init = true;
  p.trace = opts.trace;
  p.capacity = opts.trace_capacity;
  g_defaults.store(p, std::memory_order_release);
}

}  // namespace cni::obs
