#include "obs/obs.hpp"

namespace cni::obs {

void RunObs::bind_node_stats(std::uint32_t i, const sim::NodeStats& st) {
  NodeObs& n = node(i);
  for (const sim::NodeStats::Field& f : sim::NodeStats::fields()) {
    n.metrics().bind_counter(f.name, &(st.*f.member));
  }
}

}  // namespace cni::obs
