// Observability context: one NodeObs per simulated node, one RunObs per
// cluster, and the emit macros every instrumentation site goes through.
//
// Two off switches, by design:
//   * runtime  — Options::trace (CNI_TRACE env / --trace-out). When off, an
//     emit site is one pointer test and one predictable branch.
//   * compile  — -DCNI_OBS_DISABLED. The CNI_TRACE_* / CNI_OBS_HIST macros
//     expand to nothing, so the instrumented hot paths are bit-for-bit the
//     uninstrumented code (bench/micro_obs measures both switches).
//
// The macros deliberately gate on the NodeObs pointer so unit tests and
// microbenchmarks can instrument components without a full cluster.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/options.hpp"
#include "obs/taxonomy.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace cni::obs {

/// One node's trace ring + metrics registry.
class NodeObs {
 public:
  NodeObs(std::uint32_t node, const Options& opts)
      : ring_(opts.trace_capacity), node_(static_cast<std::uint16_t>(node)),
        tracing_(opts.trace) {}

  [[nodiscard]] bool tracing() const { return tracing_; }
  [[nodiscard]] std::uint32_t node() const { return node_; }
  [[nodiscard]] TraceRing& ring() { return ring_; }
  [[nodiscard]] const TraceRing& ring() const { return ring_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }

  // Emit paths — call through the CNI_TRACE_* macros, not directly, so the
  // compile-time kill switch removes the call sites.
  void instant(sim::SimTime t, Component c, Event e, std::uint64_t a0, std::uint64_t a1) {
    record(t, 0, c, e, Kind::kInstant, a0, a1);
  }
  void span(sim::SimTime t0, sim::SimTime t1, Component c, Event e, std::uint64_t a0,
            std::uint64_t a1) {
    record(t0, t1 >= t0 ? t1 - t0 : 0, c, e, Kind::kSpan, a0, a1);
  }
  void counter(sim::SimTime t, Component c, Event e, std::uint64_t value) {
    record(t, 0, c, e, Kind::kCounter, value, 0);
  }
  /// Causal-tree edge: a span whose arg slots carry (self, parent) tokens.
  void causal(sim::SimTime t0, sim::SimTime t1, Stage stage, std::uint64_t self,
              std::uint64_t parent) {
    record(t0, t1 >= t0 ? t1 - t0 : 0, causal_component(stage), causal_event(stage),
           Kind::kCausal, self, parent);
  }

 private:
  void record(sim::SimTime t, sim::SimDuration dur, Component c, Event e, Kind k,
              std::uint64_t a0, std::uint64_t a1) {
    TraceRecord r;
    r.time = t;
    r.dur = dur;
    r.arg0 = a0;
    r.arg1 = a1;
    r.node = node_;
    r.component = c;
    r.event = e;
    r.kind = k;
    ring_.record(r);
  }

  TraceRing ring_;
  Metrics metrics_;
  std::uint16_t node_;
  bool tracing_;
};

/// Per-run (per-cluster) observability: one NodeObs per node.
class RunObs {
 public:
  RunObs(std::uint32_t nodes, const Options& opts) : opts_(opts) {
    nodes_.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      // cni-lint: allow(hot-path-alloc): one NodeObs per node at run setup;
      // recording itself never allocates (trace.hpp).
      nodes_.push_back(std::make_unique<NodeObs>(i, opts));
    }
  }

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] NodeObs& node(std::uint32_t i) { return *nodes_.at(i); }
  [[nodiscard]] const NodeObs& node(std::uint32_t i) const { return *nodes_.at(i); }

  /// Registers the legacy NodeStats accounts as bound counters, one view per
  /// field. The registry reads the very fields the legacy path increments,
  /// which is what makes `metrics totals == NodeStats` exact by construction.
  void bind_node_stats(std::uint32_t i, const sim::NodeStats& st);

 private:
  Options opts_;
  std::vector<std::unique_ptr<NodeObs>> nodes_;  // stable NodeObs addresses
};

}  // namespace cni::obs

// ---------------------------------------------------------------------------
// Emit macros. CNI_OBS_ENABLED reflects the compile-time kill switch; when
// off, every macro vanishes (arguments are not evaluated).
// ---------------------------------------------------------------------------

#if defined(CNI_OBS_DISABLED)
#define CNI_OBS_ENABLED 0
#else
#define CNI_OBS_ENABLED 1
#endif

#if CNI_OBS_ENABLED

// Note: the context parameter is `ctx_`, not `obs` — a parameter named `obs`
// would capture the `obs` token inside `::cni::obs::NodeObs` during expansion.

#define CNI_TRACE_INSTANT(ctx_, t, comp, evt, a0, a1)                             \
  do {                                                                            \
    ::cni::obs::NodeObs* cni_obs_o_ = (ctx_);                                     \
    if (cni_obs_o_ != nullptr && cni_obs_o_->tracing()) {                         \
      cni_obs_o_->instant((t), (comp), (evt), (a0), (a1));                        \
    }                                                                             \
  } while (0)

#define CNI_TRACE_SPAN(ctx_, t0, t1, comp, evt, a0, a1)                           \
  do {                                                                            \
    ::cni::obs::NodeObs* cni_obs_o_ = (ctx_);                                     \
    if (cni_obs_o_ != nullptr && cni_obs_o_->tracing()) {                         \
      cni_obs_o_->span((t0), (t1), (comp), (evt), (a0), (a1));                    \
    }                                                                             \
  } while (0)

#define CNI_TRACE_COUNTER(ctx_, t, comp, evt, value)                              \
  do {                                                                            \
    ::cni::obs::NodeObs* cni_obs_o_ = (ctx_);                                     \
    if (cni_obs_o_ != nullptr && cni_obs_o_->tracing()) {                         \
      cni_obs_o_->counter((t), (comp), (evt), (value));                           \
    }                                                                             \
  } while (0)

#define CNI_TRACE_CAUSAL(ctx_, t0, t1, stage, self, parent)                       \
  do {                                                                            \
    ::cni::obs::NodeObs* cni_obs_o_ = (ctx_);                                     \
    if (cni_obs_o_ != nullptr && cni_obs_o_->tracing()) {                         \
      cni_obs_o_->causal((t0), (t1), (stage), (self), (parent));                  \
    }                                                                             \
  } while (0)

/// Marks an outgoing frame's journey as traced (keeps any parent token a
/// protocol layer already stamped). A nonzero Frame::trace is the flag the
/// fabric and the receiving board key their causal collection on.
#define CNI_TRACE_MINT(ctx_, frame_)                                              \
  do {                                                                            \
    ::cni::obs::NodeObs* cni_obs_o_ = (ctx_);                                     \
    if (cni_obs_o_ != nullptr && cni_obs_o_->tracing() && (frame_).trace == 0) {  \
      (frame_).trace = ::cni::obs::kCausalTracedBit;                              \
    }                                                                             \
  } while (0)

/// Records into a pre-resolved histogram handle (null-safe).
#define CNI_OBS_HIST(hist, value)                                                 \
  do {                                                                            \
    ::cni::obs::Hist* cni_obs_h_ = (hist);                                        \
    if (cni_obs_h_ != nullptr) cni_obs_h_->record(value);                         \
  } while (0)

/// Sets a pre-resolved gauge handle (null-safe).
#define CNI_OBS_GAUGE_SET(gauge, value)                                           \
  do {                                                                            \
    ::cni::obs::Gauge* cni_obs_g_ = (gauge);                                      \
    if (cni_obs_g_ != nullptr) cni_obs_g_->set(value);                            \
  } while (0)

#else  // CNI_OBS_DISABLED

#define CNI_TRACE_INSTANT(ctx_, t, comp, evt, a0, a1) do { } while (0)
#define CNI_TRACE_SPAN(ctx_, t0, t1, comp, evt, a0, a1) do { } while (0)
#define CNI_TRACE_COUNTER(ctx_, t, comp, evt, value) do { } while (0)
#define CNI_TRACE_CAUSAL(ctx_, t0, t1, stage, self, parent) do { } while (0)
#define CNI_TRACE_MINT(ctx_, frame_) do { } while (0)
#define CNI_OBS_HIST(hist, value) do { } while (0)
#define CNI_OBS_GAUGE_SET(gauge, value) do { } while (0)

#endif  // CNI_OBS_ENABLED
