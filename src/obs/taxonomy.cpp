#include "obs/taxonomy.hpp"

namespace cni::obs {

const char* component_name(Component c) {
  switch (c) {
    case Component::kMCache: return "mcache";
    case Component::kAdc: return "adc";
    case Component::kPathfinder: return "pathfinder";
    case Component::kDma: return "dma";
    case Component::kGovernor: return "governor";
    case Component::kDsm: return "dsm";
    case Component::kNic: return "nic";
    case Component::kHost: return "host";
    case Component::kFabric: return "fabric";
  }
  return "unknown";
}

const char* event_name(Event e) {
  switch (e) {
    case Event::kMCacheLookupHit: return "mcache.lookup_hit";
    case Event::kMCacheLookupMiss: return "mcache.lookup_miss";
    case Event::kMCacheInsert: return "mcache.insert";
    case Event::kMCacheEvict: return "mcache.evict";
    case Event::kMCacheSnoop: return "mcache.snoop";
    case Event::kAdcEnqueueTx: return "adc.enqueue_tx";
    case Event::kAdcTxWait: return "adc.tx_wait";
    case Event::kPathfinderClassify: return "pathfinder.classify";
    case Event::kDmaTransfer: return "dma.transfer";
    case Event::kGovernorInterrupt: return "governor.interrupt";
    case Event::kGovernorPoll: return "governor.poll";
    case Event::kGovernorModeSwitch: return "governor.mode_switch";
    case Event::kTxFrame: return "nic.tx_frame";
    case Event::kRxFrame: return "nic.rx_frame";
    case Event::kAihDispatch: return "nic.aih_dispatch";
    case Event::kDsmFault: return "dsm.fault";
    case Event::kDsmPageArrival: return "dsm.page_arrival";
    case Event::kKernelSend: return "host.kernel_send";
    case Event::kKernelRecv: return "host.kernel_recv";
    case Event::kHostInterrupt: return "host.interrupt";
    case Event::kCausalFault: return "causal.fault";
    case Event::kCausalTx: return "causal.tx";
    case Event::kCausalFabWire: return "causal.fab_wire";
    case Event::kCausalFabHop: return "causal.fab_contention";
    case Event::kCausalFabCredit: return "causal.fab_credit";
    case Event::kCausalRx: return "causal.rx";
    case Event::kCausalMCache: return "causal.mcache_miss";
    case Event::kCausalHandler: return "causal.handler";
    case Event::kCausalDeliver: return "causal.deliver";
    case Event::kCausalBarrier: return "causal.barrier";
    case Event::kCausalColCombine: return "causal.coll_combine";
    case Event::kCausalColDown: return "causal.coll_down";
  }
  return "unknown";
}

}  // namespace cni::obs
