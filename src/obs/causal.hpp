// Causality tokens: the compact span IDs that link trace records into a
// parent-linked causal tree (DESIGN.md §15).
//
// A token packs (origin node, origin sequence number, stage) into one u64.
// Both components come from state the simulation already maintains — the
// frame header's (src_node, seq) tuple — so tokens are a pure function of
// the deterministic event stream and never depend on shard count, epoch
// fusion, or drain interleaving. Every stage of a frame's journey derives
// its own token from the header it carries; only the *cross-frame* parent
// (the fault that caused a request, the request a reply answers) rides on
// the wire, in atm::Frame::trace.
//
// Bit layout (high to low):
//   bit 63      traced flag — set on every minted token, so a nonzero
//               Frame::trace doubles as "this frame's journey is traced"
//   bits 48-62  origin node (15 bits; the cluster node ceiling is 4096)
//   bits 16-47  origin sequence number (32 bits, per-board monotonic)
//   bits  8-15  reserved (zero)
//   bits  0-7   stage id
#pragma once

#include <cstdint>

#include "obs/taxonomy.hpp"

namespace cni::obs {

/// Stage ids, one per causal event. Distinct from Event so the token layout
/// is frozen independently of taxonomy growth.
enum class Stage : std::uint8_t {
  kFault = 1,
  kTx = 2,
  kFabWire = 3,
  kFabHop = 4,
  kFabCredit = 5,
  kRx = 6,
  kMCache = 7,
  kHandler = 8,
  kDeliver = 9,
  kBarrier = 10,
  kColCombine = 11,  ///< NIC tree collective: child arrivals combined, forwarded up
  kColDown = 12,     ///< NIC tree collective: release forwarded down to children
};

inline constexpr std::uint64_t kCausalTracedBit = 1ull << 63;

/// Mints the token for `stage` of the message `(origin, seq)`.
[[nodiscard]] constexpr std::uint64_t causal_token(std::uint32_t origin,
                                                   std::uint32_t seq, Stage stage) {
  return kCausalTracedBit | (static_cast<std::uint64_t>(origin & 0x7fffu) << 48) |
         (static_cast<std::uint64_t>(seq) << 16) | static_cast<std::uint64_t>(stage);
}

/// The same message's token at a different stage (tokens of one frame's
/// journey differ only in the stage byte).
[[nodiscard]] constexpr std::uint64_t causal_restage(std::uint64_t token, Stage stage) {
  return (token & ~0xffull) | static_cast<std::uint64_t>(stage);
}

[[nodiscard]] constexpr std::uint32_t causal_origin(std::uint64_t token) {
  return static_cast<std::uint32_t>((token >> 48) & 0x7fffu);
}
[[nodiscard]] constexpr std::uint32_t causal_seq(std::uint64_t token) {
  return static_cast<std::uint32_t>(token >> 16);
}
[[nodiscard]] constexpr Stage causal_stage(std::uint64_t token) {
  return static_cast<Stage>(token & 0xffu);
}

/// The causal event a stage is recorded under.
[[nodiscard]] constexpr Event causal_event(Stage stage) {
  switch (stage) {
    case Stage::kFault: return Event::kCausalFault;
    case Stage::kTx: return Event::kCausalTx;
    case Stage::kFabWire: return Event::kCausalFabWire;
    case Stage::kFabHop: return Event::kCausalFabHop;
    case Stage::kFabCredit: return Event::kCausalFabCredit;
    case Stage::kRx: return Event::kCausalRx;
    case Stage::kMCache: return Event::kCausalMCache;
    case Stage::kHandler: return Event::kCausalHandler;
    case Stage::kDeliver: return Event::kCausalDeliver;
    case Stage::kBarrier: return Event::kCausalBarrier;
    case Stage::kColCombine: return Event::kCausalColCombine;
    case Stage::kColDown: return Event::kCausalColDown;
  }
  return Event::kCausalTx;
}

/// The fabric component owns the fabric stages; everything else maps onto
/// the component that executes the stage.
[[nodiscard]] constexpr Component causal_component(Stage stage) {
  switch (stage) {
    case Stage::kFault:
    case Stage::kDeliver:
    case Stage::kBarrier: return Component::kDsm;
    case Stage::kTx: return Component::kAdc;
    case Stage::kFabWire:
    case Stage::kFabHop:
    case Stage::kFabCredit: return Component::kFabric;
    case Stage::kMCache: return Component::kMCache;
    case Stage::kRx:
    case Stage::kHandler:
    case Stage::kColCombine:
    case Stage::kColDown: return Component::kNic;
  }
  return Component::kNic;
}

}  // namespace cni::obs
