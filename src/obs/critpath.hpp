// Critical-path extraction over the causal trace (DESIGN.md §15).
//
// Causal records (Kind::kCausal) carry (self, parent) tokens in their arg
// slots, linking every stage of a message's journey — and, across frames,
// the fault or handler that caused the send — into parent-linked trees. This
// module rebuilds those trees from a run Snapshot, picks the tree with the
// longest end-to-end window, walks the chain from its latest leaf back to
// the root, and attributes every picosecond of the window to exactly one
// stage bucket:
//
//   * a chain span owns the time from its start to the next chain span's
//     start (the leaf owns its full duration; a root that outlives the leaf
//     owns the tail) — so the buckets sum to the window by construction;
//   * a nested non-chain child (e.g. an mcache miss inside the tx stage) is
//     carved out of its parent's bucket into its own stage.
//
// Everything here is a pure function of the trace records, so the output is
// as deterministic as the trace itself. scripts/critpath.py is the stdlib
// re-implementation for post-hoc analysis of exported files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/snapshot.hpp"
#include "sim/time.hpp"

namespace cni::obs {

/// Stage count for bucket arrays (Stage ids are 1-based and dense).
inline constexpr std::size_t kStageCount = 13;
static_assert(static_cast<std::size_t>(Stage::kColDown) == kStageCount - 1,
              "bucket arrays must cover every Stage id");

/// Stable lowercase stage name ("tx", "fab_wire", ...) used in every export.
[[nodiscard]] const char* stage_name(Stage s);

/// One chain element of the extracted critical path, root first.
struct CritStep {
  std::uint64_t token = 0;      ///< the span's causal token
  Stage stage = Stage::kTx;
  std::uint32_t node = 0;       ///< node whose ring recorded the span
  sim::SimTime start = 0;
  sim::SimDuration dur = 0;
  sim::SimDuration attributed = 0;  ///< window time owned by this step's stage
};

/// The critical path of one run (one ReportPoint's snapshot).
struct CritPath {
  bool found = false;           ///< any causal tree present?
  bool truncated = false;       ///< a ring dropped records: chains may be cut
  std::uint64_t root_token = 0;
  sim::SimTime start = 0;       ///< root span start
  sim::SimTime end = 0;         ///< latest end over root and leaf
  std::vector<CritStep> chain;  ///< root -> leaf
  std::uint64_t stage_ps[kStageCount] = {};  ///< indexed by Stage id

  [[nodiscard]] sim::SimDuration total() const { return end - start; }
  /// Sum over the stage buckets (equals total() up to layout rounding).
  [[nodiscard]] std::uint64_t attributed_total() const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : stage_ps) t += v;
    return t;
  }
};

/// Rebuilds the causal trees of `snap` and extracts the critical path of the
/// longest one. Returns found=false when the snapshot holds no causal spans.
[[nodiscard]] CritPath extract_critical_path(const Snapshot& snap);

/// Deterministic JSON export (schema "cni-critpath") for labeled points —
/// what --critpath-out writes and scripts/critpath.py consumes.
[[nodiscard]] std::string critpath_json(
    const std::vector<std::pair<std::string, CritPath>>& points);

/// The per-point "critpath" object embedded in the run report (no chain).
[[nodiscard]] std::string critpath_report_fragment(const CritPath& cp);

}  // namespace cni::obs
