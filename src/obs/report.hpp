// Machine-readable run artifacts.
//
// Two exports, both deterministic byte-for-byte for a given simulation:
//   * Chrome trace_event JSON (chrome://tracing, Perfetto) built from the
//     per-node trace rings; timestamps are simulated microseconds.
//   * A versioned run report (schema "cni-run-report") carrying build id,
//     config, figure values, per-node metrics and histogram percentiles —
//     what scripts/bench_engine.py and scripts/validate_report.py consume.
//
// The Reporter class is the harness the runner and every bench main share:
// it owns flag parsing (--trace-out / --metrics-out / --trace-capacity),
// flips the process-default Options *before* sweep threads start, collects
// one ReportPoint per sweep point, and writes the files at the end.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/options.hpp"
#include "obs/snapshot.hpp"

namespace cni::obs {

/// Bumped whenever the report layout changes; validate_report.py pins it.
/// v2: per-point "trace_truncated" + "critpath", top-level "trace_truncated".
inline constexpr std::uint32_t kReportVersion = 2;

/// Results of one sweep point (one Cluster run).
struct ReportPoint {
  std::string label;  ///< e.g. "procs=8 system=cni"
  std::vector<std::pair<std::string, std::string>> config;  ///< point config
  std::vector<std::pair<std::string, double>> values;       ///< figure numbers
  /// Legacy NodeStats totals, serialized through NodeStats::fields() by the
  /// caller. Redundant with summing the snapshot's bound counters — which is
  /// the point: validate_report.py diffs the two to prove the metrics
  /// registry never drifts from the accounts the figures are computed from.
  std::vector<std::pair<std::string, std::uint64_t>> legacy;
  Snapshot snapshot;
};

/// Version string baked in by the build (git describe), "unknown" otherwise.
[[nodiscard]] const char* build_version();

[[nodiscard]] std::string json_escape(const std::string& s);

/// Chrome trace_event JSON for all points (pid = point index, tid = node).
[[nodiscard]] std::string chrome_trace_json(const std::vector<ReportPoint>& points);

/// The versioned run report. `config` is run-level (figure id, app, ...).
[[nodiscard]] std::string run_report_json(
    const std::string& binary,
    const std::vector<std::pair<std::string, std::string>>& config,
    const std::vector<ReportPoint>& points);

/// Writes `contents` to `path`; returns false (and logs) on failure.
bool write_text_file(const std::string& path, const std::string& contents);

/// Flag-driven reporting for a figure/table binary. Construction parses and
/// strips the obs flags and, if tracing was requested, installs the process
/// default Options — it must therefore run before any sweep thread starts.
class Reporter {
 public:
  Reporter(int argc, char** argv, std::string binary);

  /// Was --trace-out or --critpath-out given (so clusters should record)?
  [[nodiscard]] bool tracing() const {
    return !trace_path_.empty() || !critpath_path_.empty();
  }
  /// Is any output file requested at all?
  [[nodiscard]] bool active() const {
    return !trace_path_.empty() || !metrics_path_.empty() || !critpath_path_.empty();
  }

  void add_config(std::string key, std::string value) {
    config_.emplace_back(std::move(key), std::move(value));
  }
  void add_point(ReportPoint pt) { points_.push_back(std::move(pt)); }

  /// Writes the requested files. Returns false if any write failed.
  bool finish() const;

 private:
  std::string binary_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string critpath_path_;  ///< --critpath-out: cni-critpath JSON target
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<ReportPoint> points_;
};

}  // namespace cni::obs
