// Materialized observability results.
//
// A Metrics registry is full of *views* — bound counters point into the
// cluster's NodeStats accounts, which die with the Cluster. A Snapshot copies
// every value out at end of run so RunResult can carry the numbers past the
// simulation's lifetime, into report writers and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cni::obs {

struct HistSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct NodeSnapshot {
  std::uint32_t node = 0;
  std::vector<CounterSnapshot> counters;
  std::vector<HistSnapshot> hists;
  std::vector<GaugeSnapshot> gauges;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  std::vector<TraceRecord> trace;  ///< live ring contents, oldest-first (empty unless tracing)

  [[nodiscard]] std::uint64_t counter_or(const std::string& name, std::uint64_t fallback) const {
    for (const CounterSnapshot& c : counters) {
      if (c.name == name) return c.value;
    }
    return fallback;
  }
};

/// Advisory, process-wide allocator stats sampled from the thread that ran
/// the simulation. NOT deterministic under parallel sweeps (util::BufPool is
/// per-thread and shared across every point a worker executes), so reports
/// mark the section advisory and determinism tests exclude it.
struct BufPoolSnapshot {
  bool sampled = false;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t refurbished = 0;
  std::uint64_t remote_frees = 0;
  std::uint64_t outstanding = 0;
};

struct Snapshot {
  bool traced = false;  ///< were the rings recording during the run?
  std::vector<NodeSnapshot> nodes;
  BufPoolSnapshot bufpool;

  /// Sum of one named counter across all nodes (0 if absent everywhere).
  [[nodiscard]] std::uint64_t total_counter(const std::string& name) const {
    std::uint64_t t = 0;
    for (const NodeSnapshot& n : nodes) t += n.counter_or(name, 0);
    return t;
  }
};

}  // namespace cni::obs
