// Deterministic trace recorder: per-node ring buffers of simulated-time
// event records.
//
// Records are stamped with sim::SimTime only — never wall clock — so a trace
// is a pure function of the simulation and two identical runs produce
// byte-identical exports (the determinism lint keeps wall clocks out of
// src/, including this directory). The ring is sized once at construction
// and overwrites its oldest record when full, counting what it dropped:
// recording never allocates, so enabling tracing cannot perturb the
// simulated timing or the allocation-free hot paths.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/taxonomy.hpp"
#include "sim/time.hpp"
#include "util/thread_annotations.hpp"

namespace cni::obs {

/// One trace record, 40 bytes. `dur` is zero for instants and counters; for
/// counters `arg0` carries the sampled value.
struct TraceRecord {
  sim::SimTime time = 0;     ///< event (or span start) time, ps
  sim::SimDuration dur = 0;  ///< span duration, ps
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint16_t node = 0;
  Component component = Component::kMCache;
  Event event = Event::kMCacheLookupHit;
  Kind kind = Kind::kInstant;
  std::uint8_t pad[3] = {};

  bool operator==(const TraceRecord& o) const {
    return time == o.time && dur == o.dur && arg0 == o.arg0 && arg1 == o.arg1 &&
           node == o.node && component == o.component && event == o.event &&
           kind == o.kind;
  }
};
static_assert(sizeof(TraceRecord) == 40);

/// Fixed-capacity overwrite-oldest ring of trace records.
///
/// Ownership (checked by Clang thread-safety analysis, DESIGN.md §13): each
/// ring belongs to one node, and in sharded runs is written only by that
/// node's owning shard mid-epoch. Readers (export, report assembly) run at
/// quiescence — after the run, or between epochs on the coordinator — which
/// is what confers the shared role they assert.
class TraceRing {
 public:
  /// The owning role: the node's shard thread while recording; any thread
  /// at quiescence for reads. Public so NodeObs::record can assert it.
  util::Capability owner;

  /// Storage is allocated here, once; record() never allocates.
  explicit TraceRing(std::uint32_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

  void record(const TraceRecord& r) {
    // Held by protocol: records originate from the node's own simulated
    // events, which execute on its owning shard.
    owner.assert_held();
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = r;
    ++total_;
  }

  [[nodiscard]] std::uint32_t capacity() const {
    owner.assert_shared();  // ring_ is sized once, at construction
    return static_cast<std::uint32_t>(ring_.size());
  }
  /// Records ever recorded, including those since overwritten.
  [[nodiscard]] std::uint64_t recorded() const {
    owner.assert_shared();  // quiescent read (see class comment)
    return total_;
  }
  /// Records lost to wrap-around (oldest-first).
  [[nodiscard]] std::uint64_t dropped() const {
    owner.assert_shared();  // quiescent read (see class comment)
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  /// Live records currently held.
  [[nodiscard]] std::size_t size() const {
    owner.assert_shared();  // quiescent read (see class comment)
    return total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
  }

  void clear() {
    owner.assert_held();  // quiescent reset (tests, re-runs)
    total_ = 0;
  }

  /// Visits live records oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    owner.assert_shared();  // quiescent read (see class comment)
    const std::size_t n = size();
    const std::uint64_t first = total_ - n;
    for (std::size_t i = 0; i < n; ++i) {
      fn(ring_[static_cast<std::size_t>((first + i) % ring_.size())]);
    }
  }

 private:
  std::vector<TraceRecord> ring_ CNI_GUARDED_BY(owner);
  std::uint64_t total_ CNI_GUARDED_BY(owner) = 0;
};

}  // namespace cni::obs
