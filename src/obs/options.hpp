// Observability run options.
//
// Tracing is off by default: the per-record cost is small but the figure
// sweeps run billions of events, and the paper's numbers must never depend
// on whether anyone was watching. The runtime switch is the CNI_TRACE
// environment variable (or an explicit --trace-out flag in the bench
// binaries); the compile-time kill switch is -DCNI_OBS_DISABLED, which
// compiles every instrumentation site out entirely (see obs.hpp).
#pragma once

#include <cstdint>

namespace cni::obs {

struct Options {
  /// Record trace events into the per-node rings.
  bool trace = false;
  /// Ring capacity in records per node. When a ring is full the oldest
  /// record is overwritten and the drop counter advances, so a bounded ring
  /// never perturbs the simulation by allocating mid-run.
  std::uint32_t trace_capacity = 4096;
};

/// Process-wide default options, consulted by SimParams. Initialized once
/// from the environment (CNI_TRACE=1, CNI_TRACE_CAPACITY=<records>); a bench
/// binary's --trace-out flag overrides them via set_default_options() before
/// any sweep thread starts.
[[nodiscard]] Options default_options();
void set_default_options(const Options& opts);

}  // namespace cni::obs
