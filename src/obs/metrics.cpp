#include "obs/metrics.hpp"

#include <cmath>

namespace cni::obs {

std::uint64_t Hist::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  // Rank of the percentile sample, 1-based, rounded up (nearest-rank method):
  // the smallest value v such that at least p% of samples are <= v.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_) / 100.0));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Clamp to the observed extremes: a one-sample bucket shouldn't report
      // a bound beyond the true max.
      const std::uint64_t bound = bucket_bound(i);
      return bound > max_ ? max_ : bound;
    }
  }
  return max_;
}

}  // namespace cni::obs
