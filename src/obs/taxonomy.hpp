// Event taxonomy: the closed set of components and events a trace can carry.
//
// Records store small enum ids, never strings, so the hot-path emit is two
// stores and the ring stays 40 bytes/record; the id -> name tables here are
// only touched at export time. DESIGN.md §11 documents what each event means
// and which argument slots it fills.
#pragma once

#include <cstdint>

namespace cni::obs {

enum class Component : std::uint8_t {
  kMCache = 0,      ///< Message Cache (paper §2.2)
  kAdc = 1,         ///< Application Device Channels (paper §2.1)
  kPathfinder = 2,  ///< PATHFINDER packet classifier
  kDma = 3,         ///< board <-> host DMA engine
  kGovernor = 4,    ///< hybrid poll/interrupt notification
  kDsm = 5,         ///< DSM protocol (faults, fetches)
  kNic = 6,         ///< board substrate (tx/rx processors, AIH)
  kHost = 7,        ///< host CPU (kernel path on the standard NIC)
  kFabric = 8,      ///< ATM fabric (switch stages, links, credits)
};
inline constexpr std::uint32_t kComponentCount = 9;

enum class Event : std::uint8_t {
  // Message Cache. arg0 = source VA, arg1 = span bytes.
  kMCacheLookupHit = 0,
  kMCacheLookupMiss = 1,
  kMCacheInsert = 2,
  kMCacheEvict = 3,  ///< arg0 = evictions this insert, arg1 = span bytes
  kMCacheSnoop = 4,  ///< arg0 = VA, arg1 = len
  // ADC. arg0 = descriptor bytes, arg1 = tx-ring occupancy after enqueue.
  kAdcEnqueueTx = 5,
  kAdcTxWait = 6,  ///< span: descriptor enqueue -> transmit processor pickup
  // PATHFINDER. arg0 = comparisons, arg1 = 1 if resolved via dynamic pattern.
  kPathfinderClassify = 7,
  // DMA. arg0 = bytes, arg1 = 0 read (host->board) / 1 write (board->host).
  kDmaTransfer = 8,
  // Notification. arg0 = inter-arrival gap (ps).
  kGovernorInterrupt = 9,
  kGovernorPoll = 10,
  kGovernorModeSwitch = 11,  ///< arg0 = 1 entering interrupt mode, 0 leaving
  // NIC substrate. arg0 = frame bytes, arg1 = message type.
  kTxFrame = 12,       ///< span: transmit start -> SAR complete
  kRxFrame = 13,       ///< span: arrival -> classified
  kAihDispatch = 14,   ///< arg0 = message type, arg1 = 1 on-NIC / 0 on-host
  // DSM. arg0 = page id, arg1 = 1 write fault / 0 read fault.
  kDsmFault = 15,      ///< span: fault trap -> page data usable
  kDsmPageArrival = 16,  ///< arg0 = page id, arg1 = payload bytes
  // Host kernel path (standard NIC). arg0 = frame bytes.
  kKernelSend = 17,
  kKernelRecv = 18,
  kHostInterrupt = 19,
  // Causal stages (Kind::kCausal). arg0 = this span's token, arg1 = the
  // parent span's token (0 for a chain root). Tokens derive from the frame
  // header's (origin node, seq) plus the stage id — see obs/causal.hpp —
  // so an entire remote round trip reconstructs as one parent-linked tree.
  kCausalFault = 20,     ///< span: fault trap -> page usable (chain root)
  kCausalTx = 21,        ///< span: send accepted -> SAR complete
  kCausalFabWire = 22,   ///< span: switch-stage + link serialization/flight
  kCausalFabHop = 23,    ///< span: switch-port contention wait
  kCausalFabCredit = 24, ///< span: credit-stall wait (Clos backpressure)
  kCausalRx = 25,        ///< span: arrival -> handler/channel dispatch
  kCausalMCache = 26,    ///< span: Message Cache miss penalty on the tx path
  kCausalHandler = 27,   ///< span: AIH / host handler service
  kCausalDeliver = 28,   ///< span: reply serviced -> waiting thread resumed
  kCausalBarrier = 29,   ///< span: barrier arrive -> release
  kCausalColCombine = 30,  ///< span: NIC collective combine -> forward up-tree
  kCausalColDown = 31,     ///< span: NIC collective release fan-out down-tree
};
inline constexpr std::uint32_t kEventCount = 32;

/// What a record means in Chrome trace_event terms.
enum class Kind : std::uint8_t {
  kInstant = 0,  ///< ph "i": a point in simulated time
  kSpan = 1,     ///< ph "X": a complete event with a duration
  kCounter = 2,  ///< ph "C": a sampled counter value (arg0)
  kCausal = 3,   ///< ph "X" + parent link: a causal-tree edge (obs/causal.hpp)
};

[[nodiscard]] const char* component_name(Component c);
[[nodiscard]] const char* event_name(Event e);

}  // namespace cni::obs
