#include "obs/critpath.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/report.hpp"
#include "util/flat_map.hpp"

namespace cni::obs {
namespace {

struct SpanRec {
  std::uint64_t token = 0;
  std::uint64_t parent = 0;
  Stage stage = Stage::kTx;
  std::uint32_t node = 0;
  sim::SimTime start = 0;
  sim::SimDuration dur = 0;
};

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out.append(buf, buf + (n < 0 ? 0 : (n >= static_cast<int>(sizeof(buf))
                                          ? static_cast<int>(sizeof(buf)) - 1
                                          : n)));
}

}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kFault: return "fault";
    case Stage::kTx: return "tx";
    case Stage::kFabWire: return "fab_wire";
    case Stage::kFabHop: return "fab_contention";
    case Stage::kFabCredit: return "fab_credit";
    case Stage::kRx: return "rx";
    case Stage::kMCache: return "mcache";
    case Stage::kHandler: return "handler";
    case Stage::kDeliver: return "deliver";
    case Stage::kBarrier: return "barrier";
    case Stage::kColCombine: return "coll_combine";
    case Stage::kColDown: return "coll_down";
  }
  return "unknown";
}

CritPath extract_critical_path(const Snapshot& snap) {
  CritPath cp;

  // Collect every causal span, first occurrence of each token winning (the
  // snapshot's node/record order is deterministic, so so is this).
  std::vector<SpanRec> spans;
  util::U64FlatMap<std::size_t> by_token;
  for (const NodeSnapshot& node : snap.nodes) {
    if (node.trace_dropped != 0) cp.truncated = true;
    for (const TraceRecord& r : node.trace) {
      if (r.kind != Kind::kCausal) continue;
      if (by_token.contains(r.arg0)) continue;
      SpanRec s;
      s.token = r.arg0;
      s.parent = r.arg1;
      s.stage = causal_stage(r.arg0);
      s.node = node.node;
      s.start = r.time;
      s.dur = r.dur;
      by_token.insert(s.token, spans.size());
      spans.push_back(s);
    }
  }
  if (spans.empty()) return cp;
  cp.found = true;

  // Children adjacency and per-leaf chains. A parent token that resolves to
  // no recorded span (ring drop, or a genuine chain root) ends the walk.
  std::vector<std::vector<std::size_t>> children(spans.size());
  std::vector<bool> is_leaf(spans.size(), true);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const std::size_t* p = by_token.find(spans[i].parent);
    if (p == nullptr || *p == i) continue;
    children[*p].push_back(i);
    is_leaf[*p] = false;
  }

  const auto root_of = [&](std::size_t i) {
    // Bounded by the span count, so a corrupt parent cycle cannot hang us.
    for (std::size_t hops = 0; hops < spans.size(); ++hops) {
      const std::size_t* p = by_token.find(spans[i].parent);
      if (p == nullptr || *p == i) break;
      i = *p;
    }
    return i;
  };

  // Per root, the window is [root start, latest leaf-or-root end]. Pick the
  // widest window; ties break on earlier start, then smaller root token.
  std::size_t best_leaf = spans.size();
  std::size_t best_root = spans.size();
  sim::SimDuration best_window = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (!is_leaf[i]) continue;
    const std::size_t r = root_of(i);
    const sim::SimTime end =
        std::max(spans[i].start + spans[i].dur, spans[r].start + spans[r].dur);
    if (end < spans[r].start) continue;
    const sim::SimDuration window = end - spans[r].start;
    const bool better =
        best_root == spans.size() || window > best_window ||
        (window == best_window &&
         (spans[r].start < spans[best_root].start ||
          (spans[r].start == spans[best_root].start &&
           spans[r].token < spans[best_root].token)));
    if (better) {
      best_window = window;
      best_root = r;
      best_leaf = i;
    } else if (r == best_root) {
      // Same tree: keep the latest-ending leaf (tie: smaller token).
      const SpanRec& cur = spans[best_leaf];
      const sim::SimTime cur_end = cur.start + cur.dur;
      const sim::SimTime cand_end = spans[i].start + spans[i].dur;
      if (cand_end > cur_end ||
          (cand_end == cur_end && spans[i].token < cur.token)) {
        best_leaf = i;
      }
    }
  }
  if (best_root == spans.size()) return cp;

  // The chain, root first.
  std::vector<std::size_t> chain;
  for (std::size_t i = best_leaf;; ) {
    chain.push_back(i);
    if (i == best_root) break;
    const std::size_t* p = by_token.find(spans[i].parent);
    if (p == nullptr || *p == i || chain.size() > spans.size()) break;
    i = *p;
  }
  std::reverse(chain.begin(), chain.end());

  const SpanRec& root = spans[chain.front()];
  const SpanRec& leaf = spans[chain.back()];
  cp.root_token = root.token;
  cp.start = root.start;
  cp.end = std::max(leaf.start + leaf.dur, root.start + root.dur);

  // Attribution: step i owns [start_i, start_{i+1}); the leaf owns its span;
  // a root outliving the leaf owns the tail. Nested non-chain children are
  // carved out of their owner's bucket into their own stage.
  cp.chain.reserve(chain.size());
  for (std::size_t ci = 0; ci < chain.size(); ++ci) {
    const SpanRec& s = spans[chain[ci]];
    sim::SimTime own_end;
    if (ci + 1 < chain.size()) {
      own_end = std::max(spans[chain[ci + 1]].start, s.start);
    } else {
      own_end = s.start + s.dur;
    }
    sim::SimDuration attr = own_end - s.start;
    if (ci == 0 && cp.end > std::max(own_end, leaf.start + leaf.dur)) {
      attr += cp.end - (leaf.start + leaf.dur);  // the root's tail
    }
    const std::size_t on_chain = ci + 1 < chain.size() ? chain[ci + 1] : spans.size();
    for (const std::size_t c : children[chain[ci]]) {
      if (c == on_chain) continue;
      const SpanRec& sub = spans[c];
      const sim::SimTime lo = std::max(sub.start, s.start);
      const sim::SimTime hi = std::min(sub.start + sub.dur, own_end);
      if (hi <= lo) continue;
      const sim::SimDuration carved = std::min<sim::SimDuration>(hi - lo, attr);
      attr -= carved;
      cp.stage_ps[static_cast<std::size_t>(sub.stage)] += carved;
    }
    cp.stage_ps[static_cast<std::size_t>(s.stage)] += attr;
    CritStep step;
    step.token = s.token;
    step.stage = s.stage;
    step.node = s.node;
    step.start = s.start;
    step.dur = s.dur;
    step.attributed = attr;
    cp.chain.push_back(step);
  }
  return cp;
}

namespace {

void append_stages(std::string& out, const CritPath& cp) {
  out += "{";
  bool first = true;
  for (std::size_t s = 1; s < kStageCount; ++s) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += stage_name(static_cast<Stage>(s));
    out += "\":";
    append_fmt(out, "%" PRIu64, cp.stage_ps[s]);
  }
  out += '}';
}

}  // namespace

std::string critpath_report_fragment(const CritPath& cp) {
  std::string out;
  if (!cp.found) {
    out += "null";
    return out;
  }
  append_fmt(out,
             "{\"root\":\"%s@n%u#%u\",\"start_ps\":%" PRIu64 ",\"end_ps\":%" PRIu64
             ",\"total_ps\":%" PRIu64 ",\"attributed_ps\":%" PRIu64
             ",\"steps\":%zu,\"stages\":",
             stage_name(causal_stage(cp.root_token)), causal_origin(cp.root_token),
             causal_seq(cp.root_token), cp.start, cp.end, cp.total(),
             cp.attributed_total(), cp.chain.size());
  append_stages(out, cp);
  out += '}';
  return out;
}

std::string critpath_json(
    const std::vector<std::pair<std::string, CritPath>>& points) {
  std::string out;
  out += "{\"schema\":\"cni-critpath\",\"version\":1,\"build\":\"";
  out += json_escape(build_version());
  out += "\",\"points\":[";
  bool first = true;
  for (const auto& [label, cp] : points) {
    if (!first) out += ',';
    first = false;
    out += "{\"label\":\"";
    out += json_escape(label);
    append_fmt(out, "\",\"found\":%s,\"trace_truncated\":%s",
               cp.found ? "true" : "false", cp.truncated ? "true" : "false");
    if (cp.found) {
      out += ",\"critpath\":";
      out += critpath_report_fragment(cp);
      out += ",\"chain\":[";
      bool cfirst = true;
      for (const CritStep& st : cp.chain) {
        if (!cfirst) out += ',';
        cfirst = false;
        append_fmt(out,
                   "{\"stage\":\"%s\",\"node\":%u,\"origin\":%u,\"seq\":%u,"
                   "\"start_ps\":%" PRIu64 ",\"dur_ps\":%" PRIu64
                   ",\"attr_ps\":%" PRIu64 "}",
                   stage_name(st.stage), st.node, causal_origin(st.token),
                   causal_seq(st.token), st.start, st.dur, st.attributed);
      }
      out += ']';
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

}  // namespace cni::obs
