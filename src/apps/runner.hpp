// Application run harness.
//
// Builds a cluster + DSM system for a parameter set, runs one node body per
// processor, and extracts the metrics the paper's figures and tables report:
// elapsed time, per-category cycle breakdown (computation / synch overhead /
// synch delay) and the network cache hit ratio.
#pragma once

#include <cstddef>

#include "cluster/cluster.hpp"
#include "dsm/context.hpp"
#include "dsm/system.hpp"
#include "util/function_ref.hpp"

namespace cni::apps {

/// Worker count for running independent simulation points concurrently:
/// CNI_BENCH_JOBS if set (>= 1), else std::thread::hardware_concurrency().
[[nodiscard]] std::size_t sweep_jobs();

/// Runs fn(0), ..., fn(n-1) across a pool of sweep_jobs() threads. Each index
/// must be an independent unit of work (a full simulation builds its own
/// cluster, so points never share mutable state); callers keep output
/// ordering stable by writing results into a preallocated slot per index.
/// With one job (or n <= 1) everything runs on the calling thread. The first
/// exception thrown by any index is rethrown after all workers finish.
/// The callee outlives every call, so a non-owning FunctionRef suffices.
void parallel_indexed(std::size_t n, util::FunctionRef<void(std::size_t)> fn);

struct RunResult {
  sim::SimTime elapsed = 0;
  std::uint64_t elapsed_cycles = 0;  ///< host CPU cycles (166 MHz)
  sim::NodeStats totals;             ///< summed over nodes
  obs::Snapshot snapshot;            ///< per-node metrics (+ trace when enabled)
  double hit_ratio_pct = 0;          ///< network cache hit ratio (paper's term)
  sim::EpochStats parsim;            ///< sharded-mode epoch counts (zeros in legacy mode)

  // Per-processor averages in units of 1e9 cycles (the paper's Tables 2-4).
  double compute_e9 = 0;
  double overhead_e9 = 0;
  double delay_e9 = 0;
  [[nodiscard]] double total_sum_e9() const { return compute_e9 + overhead_e9 + delay_e9; }
};

/// Paper Table 1 defaults for one board kind.
[[nodiscard]] inline cluster::SimParams make_params(cluster::BoardKind board,
                                                    std::uint32_t processors,
                                                    std::uint64_t page_size = 4096,
                                                    std::uint64_t mcache_bytes = 32 * 1024) {
  cluster::SimParams p;
  p.board = board;
  p.processors = processors;
  p.page_size = page_size;
  p.cni.message_cache_bytes = mcache_bytes;
  // Board memory must hold the Message Cache + ADC queues + AIH segments;
  // grow it past the OSIRIS 1 MB only when a sweep (Figure 13) asks for a
  // Message Cache that large.
  const std::uint64_t needed = mcache_bytes + 512 * 1024;
  if (needed > p.nic.dual_port_mem_bytes) p.nic.dual_port_mem_bytes = needed;
  return p;
}

/// Runs `body` on every node of a fresh cluster. `setup` allocates the
/// shared regions and returns the app's shared-address bundle. `prof`
/// (optional) attaches a shard execution profiler to the cluster — wall-time
/// telemetry only, no effect on any simulated result.
template <typename Shared>
RunResult run_app(const cluster::SimParams& params,
                  util::FunctionRef<Shared(dsm::DsmSystem&)> setup,
                  util::FunctionRef<void(dsm::DsmContext&, const Shared&)> body,
                  dsm::DsmParams dsm_params = {}, sim::ShardProfiler* prof = nullptr) {
  cluster::Cluster cl(params);
  cl.set_shard_profiler(prof);
  dsm::DsmSystem dsmsys(cl, dsm_params);
  const Shared shared = setup(dsmsys);

  RunResult r;
  r.elapsed = cl.run([&](std::size_t i, sim::SimThread& t) {
    dsm::DsmContext ctx(dsmsys, i, t);
    body(ctx, shared);
  });
  r.elapsed_cycles = cl.elapsed_cpu_cycles();
  r.parsim = cl.epoch_stats();
  r.totals = cl.stats().total();
  r.snapshot = cl.snapshot();
  r.hit_ratio_pct = r.totals.tx_hit_ratio_pct();
  const double p = static_cast<double>(params.processors);
  r.compute_e9 = static_cast<double>(r.totals.compute_cycles) / p / 1e9;
  r.overhead_e9 = static_cast<double>(r.totals.synch_overhead_cycles) / p / 1e9;
  r.delay_e9 = static_cast<double>(r.totals.synch_delay_cycles) / p / 1e9;
  return r;
}

}  // namespace cni::apps
