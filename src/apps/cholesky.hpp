// Cholesky (SPLASH) — fine-grained benchmark (paper §3.1).
//
// "Cholesky is a fine-grained application that factorizes a sparse
// positive-definite matrix. Each processor modifies a column or a set of
// columns... Access to the columns is synchronized through column locks.
// Columns are allocated to a processor using the bag of tasks paradigm.
// Pages tend to move from the releaser to the acquirer... one page usually
// contains many columns, so concurrent write sharing and the use of write
// notices increases the parallelism."
//
// Substitution note (DESIGN.md): the Harwell-Boeing matrices bcsstk14/15 are
// not available offline, so we generate synthetic banded SPD matrices with
// matched order (1806 / 3948) and bandwidth chosen to match their density;
// the experiments depend on the column/page sharing structure, not on the
// original physics values. The parallel algorithm is right-looking banded
// Cholesky: a worker takes column t from the task bag, waits for its
// predecessor updates (fine-grained polling — the source of this app's poor
// scalability), factors it, then applies its updates to the following
// columns under their column locks.
#pragma once

#include "apps/runner.hpp"

namespace cni::apps {

struct CholeskyConfig {
  std::uint32_t n = 256;     ///< matrix order
  std::uint32_t band = 16;   ///< half bandwidth (column height below diagonal)
  // Per-element charges calibrated against the paper's own Table 4 balance
  // (computation 21.5e9 cycles per processor against 61.8e9 of delay for
  // bcsstk14): the SPLASH program performs far more work per factor element
  // than the bare multiply-add, and these charges reproduce its measured
  // computation/communication ratio rather than raw flop counts.
  std::uint32_t update_cycles_per_element = 150;
  std::uint32_t factor_cycles_per_element = 200;

  /// Storage stride of one column in bytes (0 = packed, (band+1)*8). The
  /// real bcsstk factors carry supernodal columns far longer than our
  /// synthetic band, so the stand-in configs pad column storage to match
  /// the original column footprint — this is what gives Cholesky its large
  /// Message Cache working set (Figure 13 saturates near 512 KB).
  std::uint64_t col_stride_bytes = 0;

  std::uint32_t poll_backoff_cycles = 2000;  ///< task-wait poll spacing

  /// Percentage of in-band supernode pairs that are coupled in A. The real
  /// bcsstk matrices are sparse *within* their profile; a dense band would
  /// make every nearby supernode conflict and cap parallelism near 2x,
  /// where the sparse elimination structure gives the paper's modest-but-
  /// real speedups. Adjacent supernodes are always coupled.
  std::uint32_t coupling_pct = 25;

  /// Columns per supernode task (paper: "Each processor modifies a column or
  /// a set of columns called supernodes"). Updates to a following supernode
  /// are applied under one column-lock acquisition per source task.
  std::uint32_t supernode = 4;

  [[nodiscard]] std::uint64_t stride() const {
    return col_stride_bytes != 0 ? col_stride_bytes
                                 : static_cast<std::uint64_t>(band + 1) * 8;
  }

  /// Synthetic stand-ins for the paper's Harwell-Boeing inputs.
  static CholeskyConfig bcsstk14() { return CholeskyConfig{1806, 48, 400, 500, 2048, 2000, 8, 25}; }
  static CholeskyConfig bcsstk15() { return CholeskyConfig{3948, 64, 400, 500, 3072, 2000, 8, 25}; }
};

RunResult run_cholesky(const cluster::SimParams& params, const CholeskyConfig& config,
                       double* checksum = nullptr);

/// Serial banded Cholesky of the same synthetic matrix (tolerance compare:
/// parallel update order differs).
double cholesky_reference_checksum(const CholeskyConfig& config);

/// The deterministic synthetic SPD band matrix entry A[r][c] for |r-c| <=
/// band, r >= c (lower triangle). Zero outside the coupled block structure.
/// Exposed for tests.
double cholesky_matrix_entry(std::uint32_t r, std::uint32_t c, const CholeskyConfig& cfg);

/// Are supernodes (src, dst) coupled in A's block structure? (src <= dst;
/// reflexive and adjacent pairs always couple.) Exposed for tests.
bool cholesky_a_coupled(std::uint32_t src, std::uint32_t dst, const CholeskyConfig& cfg);

/// Symbolic block elimination: per destination supernode, the source
/// supernodes whose right-looking updates reach it in L (A-couplings plus
/// fill). A superset of the numeric nonzero structure, identical on every
/// node. Exposed for tests.
std::vector<std::vector<std::uint32_t>> cholesky_block_structure(const CholeskyConfig& cfg);

}  // namespace cni::apps
