#include "apps/water.hpp"

#include <cmath>
#include <vector>

namespace cni::apps {
namespace {

struct WaterShared {
  mem::VAddr pos = 0;    ///< N x 3 doubles, owner-written
  mem::VAddr vel = 0;    ///< N x 3 doubles, owner-only
  mem::VAddr force = 0;  ///< N x 3 doubles, lock-guarded accumulation
  mem::VAddr sums = 0;   ///< per-node checksum slots
  WaterConfig cfg;
  std::uint32_t procs = 0;
  double* checksum_out = nullptr;
};

constexpr std::uint32_t kMoleculeLockBase = 100;

/// Initial lattice position for molecule m, axis a.
double init_pos(std::uint32_t m, std::uint32_t a, std::uint32_t n) {
  const auto side = static_cast<std::uint32_t>(std::lround(std::cbrt(n)));
  const std::uint32_t s = side > 0 ? side : 1;
  const std::uint32_t coords[3] = {m % s, (m / s) % s, m / (s * s)};
  return static_cast<double>(coords[a]) * 1.5 + 0.1 * static_cast<double>(a);
}

/// Pair force along one axis: a smooth short-range interaction.
void pair_force(const double* pi, const double* pj, double* out) {
  double d[3];
  double r2 = 1e-4;
  for (int a = 0; a < 3; ++a) {
    d[a] = pi[a] - pj[a];
    r2 += d[a] * d[a];
  }
  const double inv = 1.0 / (r2 * std::sqrt(r2));
  for (int a = 0; a < 3; ++a) out[a] = d[a] * inv;
}

void water_node(dsm::DsmContext& ctx, const WaterShared& sh) {
  const std::uint32_t n = sh.cfg.molecules;
  const std::uint32_t p = sh.procs;
  const std::uint32_t me = ctx.self();
  const std::uint32_t m0 = static_cast<std::uint32_t>(static_cast<std::uint64_t>(me) * n / p);
  const std::uint32_t m1 = static_cast<std::uint32_t>(static_cast<std::uint64_t>(me + 1) * n / p);
  const std::uint32_t stride = sh.cfg.mol_stride_doubles;
  auto xyz = [stride](mem::VAddr base, std::uint32_t m, std::uint32_t a) {
    return base + (static_cast<std::uint64_t>(m) * stride + a) * sizeof(double);
  };

  // Initialize owned molecules.
  for (std::uint32_t m = m0; m < m1; ++m) {
    for (std::uint32_t a = 0; a < 3; ++a) {
      ctx.write<double>(xyz(sh.pos, m, a), init_pos(m, a, n));
      ctx.write<double>(xyz(sh.vel, m, a), 0.01 * static_cast<double>((m + a) % 5));
      ctx.write<double>(xyz(sh.force, m, a), 0.0);
    }
    ctx.compute(30);
  }
  ctx.barrier();

  // Postponed-update accumulation buffer (private memory).
  std::vector<double> local(static_cast<std::size_t>(n) * 3);
  std::vector<bool> touched(n);

  for (std::uint32_t step = 0; step < sh.cfg.steps; ++step) {
    // Phase 1: pair forces over the half shell (each pair computed once).
    std::fill(local.begin(), local.end(), 0.0);
    std::fill(touched.begin(), touched.end(), false);
    for (std::uint32_t i = m0; i < m1; ++i) {
      double pi[3];
      for (std::uint32_t a = 0; a < 3; ++a) pi[a] = ctx.read<double>(xyz(sh.pos, i, a));
      for (std::uint32_t off = 1; off <= n / 2; ++off) {
        const std::uint32_t j = (i + off) % n;
        // The classic half-shell double-count guard for even n.
        if (n % 2 == 0 && off == n / 2 && i >= n / 2) continue;
        double pj[3];
        for (std::uint32_t a = 0; a < 3; ++a) pj[a] = ctx.read<double>(xyz(sh.pos, j, a));
        double f[3];
        pair_force(pi, pj, f);
        for (std::uint32_t a = 0; a < 3; ++a) {
          local[static_cast<std::size_t>(i) * 3 + a] += f[a];
          local[static_cast<std::size_t>(j) * 3 + a] -= f[a];
        }
        touched[i] = touched[j] = true;
        ctx.compute(sh.cfg.pair_cycles);
      }
    }
    ctx.barrier();

    // Phase 2: postponed updates under per-molecule locks.
    for (std::uint32_t m = 0; m < n; ++m) {
      if (!touched[m]) continue;
      ctx.acquire(kMoleculeLockBase + m);
      for (std::uint32_t a = 0; a < 3; ++a) {
        const mem::VAddr va = xyz(sh.force, m, a);
        ctx.write<double>(va, ctx.read<double>(va) + local[static_cast<std::size_t>(m) * 3 + a]);
      }
      ctx.compute(60);
      ctx.release(kMoleculeLockBase + m);
    }
    ctx.barrier();

    // Phase 3: owners integrate their molecules and reset forces.
    const double dt = 1e-3;
    for (std::uint32_t m = m0; m < m1; ++m) {
      for (std::uint32_t a = 0; a < 3; ++a) {
        const double f = ctx.read<double>(xyz(sh.force, m, a));
        const double v = ctx.read<double>(xyz(sh.vel, m, a)) + dt * f;
        ctx.write<double>(xyz(sh.vel, m, a), v);
        ctx.write<double>(xyz(sh.pos, m, a), ctx.read<double>(xyz(sh.pos, m, a)) + dt * v);
        ctx.write<double>(xyz(sh.force, m, a), 0.0);
      }
      ctx.compute(sh.cfg.integrate_cycles);
    }
    ctx.barrier();
  }

  // Deterministic-order checksum via per-node slots.
  double partial = 0;
  for (std::uint32_t m = m0; m < m1; ++m) {
    for (std::uint32_t a = 0; a < 3; ++a) partial += ctx.read<double>(xyz(sh.pos, m, a));
  }
  ctx.write<double>(sh.sums + me * sizeof(double), partial);
  ctx.barrier();
  if (me == 0 && sh.checksum_out != nullptr) {
    double total = 0;
    for (std::uint32_t k = 0; k < p; ++k) {
      total += ctx.read<double>(sh.sums + k * sizeof(double));
    }
    *sh.checksum_out = total;
  }
  ctx.barrier();
}

}  // namespace

RunResult run_water(const cluster::SimParams& params, const WaterConfig& config,
                    double* checksum) {
  return run_app<WaterShared>(
      params,
      [&](dsm::DsmSystem& dsmsys) {
        WaterShared sh;
        sh.cfg = config;
        sh.procs = params.processors;
        sh.checksum_out = checksum;
        const std::uint64_t vecs =
            static_cast<std::uint64_t>(config.molecules) * config.mol_stride_doubles * 8;
        sh.pos = dsmsys.alloc_blocked(vecs, "water-pos");
        sh.vel = dsmsys.alloc_blocked(vecs, "water-vel");
        sh.force = dsmsys.alloc_blocked(vecs, "water-force");
        sh.sums = dsmsys.alloc_at(params.processors * 8, "water-sums", 0);
        return sh;
      },
      water_node);
}

double water_reference_checksum(const WaterConfig& config) {
  const std::uint32_t n = config.molecules;
  std::vector<double> pos(static_cast<std::size_t>(n) * 3);
  std::vector<double> vel(static_cast<std::size_t>(n) * 3);
  std::vector<double> force(static_cast<std::size_t>(n) * 3, 0.0);
  for (std::uint32_t m = 0; m < n; ++m) {
    for (std::uint32_t a = 0; a < 3; ++a) {
      pos[static_cast<std::size_t>(m) * 3 + a] = init_pos(m, a, n);
      vel[static_cast<std::size_t>(m) * 3 + a] = 0.01 * static_cast<double>((m + a) % 5);
    }
  }
  for (std::uint32_t step = 0; step < config.steps; ++step) {
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t off = 1; off <= n / 2; ++off) {
        const std::uint32_t j = (i + off) % n;
        if (n % 2 == 0 && off == n / 2 && i >= n / 2) continue;
        double f[3];
        pair_force(&pos[static_cast<std::size_t>(i) * 3],
                   &pos[static_cast<std::size_t>(j) * 3], f);
        for (std::uint32_t a = 0; a < 3; ++a) {
          force[static_cast<std::size_t>(i) * 3 + a] += f[a];
          force[static_cast<std::size_t>(j) * 3 + a] -= f[a];
        }
      }
    }
    const double dt = 1e-3;
    for (std::uint32_t m = 0; m < n; ++m) {
      for (std::uint32_t a = 0; a < 3; ++a) {
        const std::size_t k = static_cast<std::size_t>(m) * 3 + a;
        vel[k] += dt * force[k];
        pos[k] += dt * vel[k];
        force[k] = 0.0;
      }
    }
  }
  double sum = 0;
  for (double v : pos) sum += v;
  return sum;
}

}  // namespace cni::apps
