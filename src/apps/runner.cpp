#include "apps/runner.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cni::apps {

std::size_t sweep_jobs() {
  if (const char* env = std::getenv("CNI_BENCH_JOBS"); env != nullptr) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

void parallel_indexed(std::size_t n, util::FunctionRef<void(std::size_t)> fn) {
  const std::size_t jobs = std::min(sweep_jobs(), n);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (error == nullptr) error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace cni::apps
