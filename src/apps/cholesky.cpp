#include "apps/cholesky.hpp"

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace cni::apps {
namespace {

struct CholeskyShared {
  mem::VAddr band = 0;     ///< column-major band storage, one stride per column
  mem::VAddr applied = 0;  ///< per-supernode update counters (u64, lock guarded)
  mem::VAddr bag = 0;      ///< the bag-of-tasks cursor (u64, bag-lock guarded)
  mem::VAddr sums = 0;
  CholeskyConfig cfg;
  std::uint32_t procs = 0;
  double* checksum_out = nullptr;
  /// Symbolic L block structure: per destination supernode its update
  /// sources, and the transpose (per source its targets).
  std::vector<std::vector<std::uint32_t>> sources;
  std::vector<std::vector<std::uint32_t>> targets;
};

constexpr std::uint32_t kBagLock = 1;
constexpr std::uint32_t kColLockBase = 10;

/// Height of column j's sub-diagonal band (clipped at the matrix edge).
std::uint32_t col_height(std::uint32_t j, const CholeskyConfig& cfg) {
  return std::min(cfg.band, cfg.n - 1 - j);
}

mem::VAddr col_addr(const CholeskyShared& sh, std::uint32_t j, std::uint32_t r_off) {
  return sh.band + static_cast<std::uint64_t>(j) * sh.cfg.stride() +
         static_cast<std::uint64_t>(r_off) * sizeof(double);
}

/// Number of supernode tasks; block b covers columns [b*B, min(n, b*B+B)).
std::uint32_t block_count(const CholeskyConfig& cfg) {
  return (cfg.n + cfg.supernode - 1) / cfg.supernode;
}

/// Can supernode src's columns structurally reach supernode dst at all
/// (band window)?
bool in_window(std::uint32_t src, std::uint32_t dst, const CholeskyConfig& cfg) {
  if (src >= dst) return false;
  const std::uint64_t last_src_col =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(src) * cfg.supernode +
                                  cfg.supernode - 1,
                              cfg.n - 1);
  return static_cast<std::uint64_t>(dst) * cfg.supernode <= last_src_col + cfg.band;
}

void cholesky_node(dsm::DsmContext& ctx, const CholeskyShared& sh) {
  const CholeskyConfig& cfg = sh.cfg;
  const std::uint32_t n = cfg.n;
  const std::uint32_t me = ctx.self();
  const std::uint32_t p = sh.procs;
  const std::uint32_t nblocks = block_count(cfg);

  // Initialization: block-distributed columns, written by their initializer.
  const std::uint32_t c0 = static_cast<std::uint32_t>(static_cast<std::uint64_t>(me) * n / p);
  const std::uint32_t c1 = static_cast<std::uint32_t>(static_cast<std::uint64_t>(me + 1) * n / p);
  for (std::uint32_t j = c0; j < c1; ++j) {
    const std::uint32_t h = col_height(j, cfg);
    for (std::uint32_t r = 0; r <= h; ++r) {
      ctx.write<double>(col_addr(sh, j, r), cholesky_matrix_entry(j + r, j, cfg));
    }
    ctx.compute(2ull * (h + 1));
  }
  if (me == 0) ctx.write<std::uint64_t>(sh.bag, 0);
  const std::uint32_t b0 =
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(me) * nblocks / p);
  const std::uint32_t b1 =
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(me + 1) * nblocks / p);
  for (std::uint32_t b = b0; b < b1; ++b) {
    ctx.write<std::uint64_t>(sh.applied + b * 8, 0);
  }
  ctx.barrier();

  // Bag-of-tasks main loop over supernodes.
  for (;;) {
    ctx.acquire(kBagLock);
    const std::uint64_t t = ctx.read<std::uint64_t>(sh.bag);
    ctx.write<std::uint64_t>(sh.bag, t + 1);
    ctx.release(kBagLock);
    if (t >= nblocks) break;
    const auto blk = static_cast<std::uint32_t>(t);
    const std::uint32_t lo = blk * cfg.supernode;
    const std::uint32_t hi = std::min(n, lo + cfg.supernode);
    const std::uint32_t deps = static_cast<std::uint32_t>(sh.sources[blk].size());

    // Fine-grained wait until every predecessor supernode's update landed.
    // The probe itself is lock traffic, so back off exponentially while the
    // pipeline ahead of us drains.
    std::uint64_t backoff = cfg.poll_backoff_cycles;
    for (;;) {
      ctx.acquire(kColLockBase + blk);
      const std::uint64_t done = ctx.read<std::uint64_t>(sh.applied + blk * 8);
      ctx.release(kColLockBase + blk);
      if (done >= deps) break;
      ctx.idle(backoff);
      backoff = std::min<std::uint64_t>(backoff * 2, 64 * 1024);
    }

    // Factor the supernode: each column in turn, folding its updates into
    // the block's later columns locally (we are its only writer now).
    ctx.acquire(kColLockBase + blk);
    for (std::uint32_t col = lo; col < hi; ++col) {
      const std::uint32_t h = col_height(col, cfg);
      const double d = std::sqrt(ctx.read<double>(col_addr(sh, col, 0)));
      ctx.write<double>(col_addr(sh, col, 0), d);
      for (std::uint32_t r = 1; r <= h; ++r) {
        ctx.write<double>(col_addr(sh, col, r),
                          ctx.read<double>(col_addr(sh, col, r)) / d);
      }
      ctx.compute(static_cast<std::uint64_t>(h + 1) * cfg.factor_cycles_per_element);
      for (std::uint32_t k = col + 1; k < hi && k <= col + h; ++k) {
        const double lkt = ctx.read<double>(col_addr(sh, col, k - col));
        for (std::uint32_t r = k; r <= col + h; ++r) {
          const mem::VAddr va = col_addr(sh, k, r - k);
          ctx.write<double>(
              va, ctx.read<double>(va) -
                      ctx.read<double>(col_addr(sh, col, r - col)) * lkt);
        }
        ctx.compute(static_cast<std::uint64_t>(col + h - k + 1) *
                    cfg.update_cycles_per_element);
      }
    }
    ctx.release(kColLockBase + blk);

    // Snapshot the factored supernode privately, then push its right-looking
    // updates into each following supernode under that block's lock — one
    // lock acquisition per (source task, target supernode) pair.
    std::vector<std::vector<double>> lcols(hi - lo);
    for (std::uint32_t col = lo; col < hi; ++col) {
      const std::uint32_t h = col_height(col, cfg);
      lcols[col - lo].resize(h + 1);
      for (std::uint32_t r = 0; r <= h; ++r) {
        lcols[col - lo][r] = ctx.read<double>(col_addr(sh, col, r));
      }
    }
    for (const std::uint32_t dst : sh.targets[blk]) {
      const std::uint32_t dlo = dst * cfg.supernode;
      const std::uint32_t dhi = std::min(n, dlo + cfg.supernode);
      ctx.acquire(kColLockBase + dst);
      for (std::uint32_t col = lo; col < hi; ++col) {
        const std::uint32_t h = col_height(col, cfg);
        const std::vector<double>& lcol = lcols[col - lo];
        for (std::uint32_t k = std::max(dlo, col + 1); k < dhi && k <= col + h; ++k) {
          const double lkt = lcol[k - col];
          for (std::uint32_t r = k; r <= col + h; ++r) {
            const mem::VAddr va = col_addr(sh, k, r - k);
            ctx.write<double>(va, ctx.read<double>(va) - lcol[r - col] * lkt);
          }
          ctx.compute(static_cast<std::uint64_t>(col + h - k + 1) *
                      cfg.update_cycles_per_element);
        }
      }
      const mem::VAddr cva = sh.applied + dst * 8;
      ctx.write<std::uint64_t>(cva, ctx.read<std::uint64_t>(cva) + 1);
      ctx.release(kColLockBase + dst);
    }
  }
  ctx.barrier();

  // Checksum: node 0 walks the factor in deterministic column order.
  if (me == 0 && sh.checksum_out != nullptr) {
    double sum = 0;
    for (std::uint32_t j = 0; j < n; ++j) {
      const std::uint32_t h = col_height(j, cfg);
      for (std::uint32_t r = 0; r <= h; ++r) sum += ctx.read<double>(col_addr(sh, j, r));
    }
    *sh.checksum_out = sum;
  }
  ctx.barrier();
}

}  // namespace

bool cholesky_a_coupled(std::uint32_t src, std::uint32_t dst, const CholeskyConfig& cfg) {
  CNI_CHECK(src <= dst);
  if (src == dst) return true;
  // No forced chain: the real matrices' elimination structure is tree-like,
  // wide enough for the bag of tasks to find independent supernodes.
  util::SplitMix64 rng((static_cast<std::uint64_t>(src) << 32) ^ dst ^
                       (static_cast<std::uint64_t>(cfg.n) << 17));
  return rng.next_below(100) < cfg.coupling_pct;
}

double cholesky_matrix_entry(std::uint32_t r, std::uint32_t c, const CholeskyConfig& cfg) {
  CNI_CHECK(r >= c && r - c <= cfg.band && r < cfg.n);
  if (r == c) {
    // Diagonal dominance guarantees positive-definiteness: each off-diagonal
    // magnitude is < 1/(1+distance), and there are at most 2*band of them.
    return 2.5 * static_cast<double>(cfg.band) + 2.0 +
           0.01 * static_cast<double>(r % 17);
  }
  // Sparse within the profile: uncoupled supernode pairs hold zeros, like
  // the real bcsstk matrices (see cholesky_block_structure for the fill).
  if (!cholesky_a_coupled(c / cfg.supernode, r / cfg.supernode, cfg)) return 0.0;
  // Deterministic pseudo-random band entry in (-1, 1) scaled by distance.
  util::SplitMix64 rng((static_cast<std::uint64_t>(r) << 32) | c);
  const double u = rng.next_double(-1.0, 1.0);
  return u / (1.0 + static_cast<double>(r - c));
}

std::vector<std::vector<std::uint32_t>> cholesky_block_structure(const CholeskyConfig& cfg) {
  const std::uint32_t nb = block_count(cfg);
  // nz[dst] = set of src < dst with L(dst, src) structurally nonzero:
  // A couplings plus symbolic fill (if k updates both i and j with j < i,
  // then j updates i). Always a superset of the numeric nonzero structure.
  std::vector<std::set<std::uint32_t>> nz(nb);
  for (std::uint32_t dst = 0; dst < nb; ++dst) {
    for (std::uint32_t src = 0; src < dst; ++src) {
      if (in_window(src, dst, cfg) && cholesky_a_coupled(src, dst, cfg)) {
        nz[dst].insert(src);
      }
    }
  }
  for (std::uint32_t k = 0; k < nb; ++k) {
    std::vector<std::uint32_t> children;
    for (std::uint32_t i = k + 1; i < nb && in_window(k, i, cfg); ++i) {
      if (nz[i].count(k) != 0) children.push_back(i);
    }
    for (std::size_t a = 0; a < children.size(); ++a) {
      for (std::size_t b = a + 1; b < children.size(); ++b) {
        if (in_window(children[a], children[b], cfg)) {
          nz[children[b]].insert(children[a]);
        }
      }
    }
  }
  std::vector<std::vector<std::uint32_t>> sources(nb);
  for (std::uint32_t dst = 0; dst < nb; ++dst) {
    sources[dst].assign(nz[dst].begin(), nz[dst].end());
  }
  return sources;
}

RunResult run_cholesky(const cluster::SimParams& params, const CholeskyConfig& config,
                       double* checksum) {
  return run_app<CholeskyShared>(
      params,
      [&](dsm::DsmSystem& dsmsys) {
        CholeskyShared sh;
        sh.cfg = config;
        sh.procs = params.processors;
        sh.checksum_out = checksum;
        const std::uint64_t band_bytes =
            static_cast<std::uint64_t>(config.n) * config.stride();
        sh.band = dsmsys.alloc_blocked(band_bytes, "cholesky-band");
        sh.applied = dsmsys.alloc_blocked(static_cast<std::uint64_t>(config.n) * 8,
                                          "cholesky-applied");
        sh.bag = dsmsys.alloc_at(8, "cholesky-bag", 0);
        sh.sums = dsmsys.alloc_at(params.processors * 8, "cholesky-sums", 0);
        sh.sources = cholesky_block_structure(config);
        sh.targets.resize(sh.sources.size());
        for (std::uint32_t dst = 0; dst < sh.sources.size(); ++dst) {
          for (const std::uint32_t src : sh.sources[dst]) sh.targets[src].push_back(dst);
        }
        return sh;
      },
      cholesky_node);
}

double cholesky_reference_checksum(const CholeskyConfig& cfg) {
  const std::uint32_t n = cfg.n;
  const std::uint32_t bw = cfg.band;
  std::vector<double> a(static_cast<std::size_t>(n) * (bw + 1), 0.0);
  auto at = [&](std::uint32_t r, std::uint32_t c) -> double& {
    return a[static_cast<std::size_t>(c) * (bw + 1) + (r - c)];
  };
  for (std::uint32_t c = 0; c < n; ++c) {
    for (std::uint32_t r = c; r <= std::min(n - 1, c + bw); ++r) {
      at(r, c) = cholesky_matrix_entry(r, c, cfg);
    }
  }
  for (std::uint32_t t = 0; t < n; ++t) {
    const std::uint32_t h = std::min(bw, n - 1 - t);
    const double d = std::sqrt(at(t, t));
    at(t, t) = d;
    for (std::uint32_t r = t + 1; r <= t + h; ++r) at(r, t) /= d;
    for (std::uint32_t k = t + 1; k <= t + h; ++k) {
      for (std::uint32_t r = k; r <= t + h; ++r) at(r, k) -= at(r, t) * at(k, t);
    }
  }
  double sum = 0;
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t r = j; r <= std::min(n - 1, j + bw); ++r) sum += at(r, j);
  }
  return sum;
}

}  // namespace cni::apps
