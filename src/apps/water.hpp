// Water (SPLASH) — medium-grained benchmark (paper §3.1).
//
// "It simulates the molecular behavior of water... In each step, the various
// intra- and inter-molecular forces affecting the molecule are calculated
// with respect to other molecules and then the parameters of the molecule
// are updated. The original algorithm was modified to postpone the updates
// until the end of an iteration as in [3]. Synchronization is performed by
// (1) acquiring a lock for updating the parameters of a molecule and (2)
// through barriers."
//
// Our kernel keeps that sharing/synchronisation structure: block-owned
// molecules, a half-shell O(N^2/2) pair phase accumulating into private
// buffers, a postponed lock-per-molecule force update phase, and barriers
// between phases. Input sizes 64 / 216 / 343 molecules, 2 steps, as run in
// Figures 6-9 and Table 3.
#pragma once

#include "apps/runner.hpp"

namespace cni::apps {

struct WaterConfig {
  std::uint32_t molecules = 64;
  std::uint32_t steps = 2;
  // ALU charges per operation, calibrated to SPLASH Water on a 166 MHz
  // in-order CPU: INTERF evaluates nine site pairs per molecule pair, each
  // with divides, square roots and cutoff logic — several thousand cycles
  // with cache stalls; the predictor-corrector integration (PREDIC/CORREC
  // over 7 derivatives x 9 coordinates) is a few thousand more.
  std::uint32_t pair_cycles = 7000;
  std::uint32_t integrate_cycles = 4000;

  /// Doubles of storage per molecule per array. SPLASH Water's molecule
  /// record carries full predictor-corrector state (~700 bytes); padding the
  /// stride reproduces that memory footprint (and hence the Message Cache
  /// working set and false-sharing behaviour) without simulating the extra
  /// arithmetic.
  std::uint32_t mol_stride_doubles = 32;
};

RunResult run_water(const cluster::SimParams& params, const WaterConfig& config,
                    double* checksum = nullptr);

/// Serial reference (identical pair set; force accumulation order differs
/// from a parallel run, so compare with a small relative tolerance).
double water_reference_checksum(const WaterConfig& config);

}  // namespace cni::apps
