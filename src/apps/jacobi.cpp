#include "apps/jacobi.hpp"

#include <vector>

namespace cni::apps {
namespace {

struct JacobiShared {
  mem::VAddr a = 0;     ///< current grid (n x n doubles, row-major)
  mem::VAddr b = 0;     ///< next grid
  mem::VAddr sums = 0;  ///< one checksum slot per node
  JacobiConfig cfg;
  std::uint32_t procs = 0;
  double* checksum_out = nullptr;
};

double init_value(std::uint32_t i, std::uint32_t j, std::uint32_t n) {
  // Deterministic, non-trivial boundary/interior values.
  if (i == 0 || j == 0 || i == n - 1 || j == n - 1) {
    return 1.0 + 0.25 * static_cast<double>((i + j) % 7);
  }
  return 0.0;
}

void jacobi_node(dsm::DsmContext& ctx, const JacobiShared& sh) {
  const std::uint32_t n = sh.cfg.n;
  const std::uint32_t p = sh.procs;
  const std::uint32_t me = ctx.self();
  const std::uint32_t r0 = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(me) * n / p);
  const std::uint32_t r1 = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(me + 1) * n / p);
  auto addr = [n](mem::VAddr base, std::uint32_t i, std::uint32_t j) {
    return base + (static_cast<std::uint64_t>(i) * n + j) * sizeof(double);
  };

  // Initialize the owned strip of both grids.
  for (std::uint32_t i = r0; i < r1; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const double v = init_value(i, j, n);
      ctx.write<double>(addr(sh.a, i, j), v);
      ctx.write<double>(addr(sh.b, i, j), v);
    }
    ctx.compute(static_cast<std::uint64_t>(n) * 2);
  }
  ctx.barrier();

  const std::uint32_t c0 = r0 > 1 ? r0 : 1;
  const std::uint32_t c1 = r1 < n - 1 ? r1 : n - 1;
  for (std::uint32_t it = 0; it < sh.cfg.iterations; ++it) {
    // Sweep: next from current; boundary rows of neighbour strips fault in.
    for (std::uint32_t i = c0; i < c1; ++i) {
      for (std::uint32_t j = 1; j + 1 < n; ++j) {
        const double v = 0.25 * (ctx.read<double>(addr(sh.a, i - 1, j)) +
                                 ctx.read<double>(addr(sh.a, i + 1, j)) +
                                 ctx.read<double>(addr(sh.a, i, j - 1)) +
                                 ctx.read<double>(addr(sh.a, i, j + 1)));
        ctx.write<double>(addr(sh.b, i, j), v);
      }
      ctx.compute(static_cast<std::uint64_t>(n - 2) * sh.cfg.flops_cycles_per_point);
    }
    ctx.barrier();
    // Copy back the owned interior.
    for (std::uint32_t i = c0; i < c1; ++i) {
      for (std::uint32_t j = 1; j + 1 < n; ++j) {
        ctx.write<double>(addr(sh.a, i, j), ctx.read<double>(addr(sh.b, i, j)));
      }
      ctx.compute(static_cast<std::uint64_t>(n - 2) * 2);
    }
    ctx.barrier();
  }

  // Deterministic checksum: per-node partial sums in fixed slots, summed in
  // node order by node 0 (float addition order independent of timing).
  double partial = 0;
  for (std::uint32_t i = r0; i < r1; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) partial += ctx.read<double>(addr(sh.a, i, j));
    ctx.compute(n);
  }
  ctx.write<double>(sh.sums + me * sizeof(double), partial);
  ctx.barrier();
  if (me == 0 && sh.checksum_out != nullptr) {
    double total = 0;
    for (std::uint32_t k = 0; k < p; ++k) {
      total += ctx.read<double>(sh.sums + k * sizeof(double));
    }
    *sh.checksum_out = total;
  }
  ctx.barrier();
}

}  // namespace

namespace {

RunResult run_jacobi_impl(const cluster::SimParams& params, const JacobiConfig& config,
                          double* checksum, sim::ShardProfiler* prof) {
  return run_app<JacobiShared>(
      params,
      [&](dsm::DsmSystem& dsmsys) {
        JacobiShared sh;
        sh.cfg = config;
        sh.procs = params.processors;
        sh.checksum_out = checksum;
        const std::uint64_t grid = static_cast<std::uint64_t>(config.n) * config.n * 8;
        sh.a = dsmsys.alloc_blocked(grid, "jacobi-a");
        sh.b = dsmsys.alloc_blocked(grid, "jacobi-b");
        sh.sums = dsmsys.alloc_at(params.processors * 8, "jacobi-sums", 0);
        return sh;
      },
      jacobi_node, {}, prof);
}

}  // namespace

RunResult run_jacobi(const cluster::SimParams& params, const JacobiConfig& config,
                     double* checksum) {
  return run_jacobi_impl(params, config, checksum, nullptr);
}

RunResult run_jacobi_profiled(const cluster::SimParams& params, const JacobiConfig& config,
                              sim::ShardProfiler* prof) {
  return run_jacobi_impl(params, config, nullptr, prof);
}

double jacobi_reference_checksum(const JacobiConfig& config) {
  const std::uint32_t n = config.n;
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  std::vector<double> b(static_cast<std::size_t>(n) * n);
  auto at = [n](std::vector<double>& g, std::uint32_t i, std::uint32_t j) -> double& {
    return g[static_cast<std::size_t>(i) * n + j];
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      at(a, i, j) = at(b, i, j) = init_value(i, j, n);
    }
  }
  for (std::uint32_t it = 0; it < config.iterations; ++it) {
    for (std::uint32_t i = 1; i + 1 < n; ++i) {
      for (std::uint32_t j = 1; j + 1 < n; ++j) {
        at(b, i, j) = 0.25 * (at(a, i - 1, j) + at(a, i + 1, j) + at(a, i, j - 1) +
                              at(a, i, j + 1));
      }
    }
    for (std::uint32_t i = 1; i + 1 < n; ++i) {
      for (std::uint32_t j = 1; j + 1 < n; ++j) at(a, i, j) = at(b, i, j);
    }
  }
  // Row-major full-grid order equals the p=1 run's summation order; tests
  // compare multi-p runs with a tolerance and same-p runs exactly.
  double sum = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) sum += at(a, i, j);
  }
  return sum;
}

}  // namespace cni::apps
