// Jacobi iteration (paper §3.1: coarse-grained benchmark).
//
// "Jacobi is a coarse-grained application with two major synchronization
// points per iteration and a high computation/communication ratio. Each
// point in the strip is iteratively calculated from the values of its
// neighbors." Strips of rows are block-distributed; each iteration computes
// next from current, barriers, copies back, and barriers again. Only the
// strip-boundary rows are communicated, via DSM page faults.
#pragma once

#include <cstdint>

#include "apps/runner.hpp"

namespace cni::apps {

struct JacobiConfig {
  std::uint32_t n = 128;          ///< matrix is n x n doubles
  std::uint32_t iterations = 20;
  std::uint32_t flops_cycles_per_point = 6;  ///< ALU charge per stencil point
};

/// Runs Jacobi on a cluster built from `params`. The returned checksum (sum
/// over the final grid, computed at node 0) lets tests compare CNI/standard
/// runs and a serial reference for bit-equal results.
RunResult run_jacobi(const cluster::SimParams& params, const JacobiConfig& config,
                     double* checksum = nullptr);

/// run_jacobi with a shard execution profiler attached (telemetry only; the
/// simulated results are identical). A separate entry point so run_jacobi
/// keeps its 3-parameter signature — the bench harness passes it around as a
/// function pointer, where a grown default-argument list would not apply.
RunResult run_jacobi_profiled(const cluster::SimParams& params, const JacobiConfig& config,
                              sim::ShardProfiler* prof);

/// Serial reference implementation (no simulation) for validation.
double jacobi_reference_checksum(const JacobiConfig& config);

}  // namespace cni::apps
